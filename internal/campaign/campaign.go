// Package campaign runs experiment matrices defined declaratively: a
// JSON spec names workloads, DVS strategies, and operating points, and
// the driver produces the full cross product with the paper's
// measurement protocol. It is how a study larger than one figure —
// "all kernels × all strategies × all points, three repetitions" — is
// scripted and archived reproducibly.
package campaign

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/dvfs"
	"repro/internal/dvs"
	"repro/internal/exec"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// Spec is the JSON experiment matrix.
type Spec struct {
	// Name labels the campaign in outputs.
	Name string `json:"name"`
	// Reps is the repetition count (default 3, the paper's protocol).
	Reps int `json:"reps,omitempty"`
	// Settle is the battery-protocol settle time as a Go duration
	// string (default "5m").
	Settle string `json:"settle,omitempty"`
	// ExactEnergy selects the integrator's ground truth instead of the
	// ACPI battery estimate.
	ExactEnergy bool `json:"exact_energy,omitempty"`
	// Net selects the fabric: "100mb" (default) or "1gb".
	Net string `json:"net,omitempty"`
	// Seed feeds repetition jitter (default 1).
	Seed int64 `json:"seed,omitempty"`
	// Parallelism bounds how many cells of the cross product run
	// concurrently (0 = one worker per CPU, 1 = sequential). Results
	// are bit-identical at any setting; see cluster.Config.Parallelism.
	Parallelism int `json:"parallelism,omitempty"`
	// Shards partitions each simulation's ranks across this many
	// event-core shards advancing in parallel (0/1 = single shard).
	// Results are byte-identical at any setting; see
	// cluster.Config.Shards. Use it for big rank counts, where one
	// cell dwarfs the cross product.
	Shards int `json:"shards,omitempty"`

	// TraceIntervalMS, when positive, samples every node's power draw
	// at this period and streams per-node statistics into each cell's
	// result (PeakPowerW). Nothing retains the raw samples.
	TraceIntervalMS int `json:"trace_interval_ms,omitempty"`
	// TraceDir, when set, archives every run's compact binary power
	// trace into this directory (created if missing), one file per
	// (workload, strategy, point, repetition seed). Requires
	// TraceIntervalMS.
	TraceDir string `json:"trace_dir,omitempty"`

	// Workloads and Strategies form the cross product with PointsMHz.
	Workloads  []WorkloadSpec `json:"workloads"`
	Strategies []StrategySpec `json:"strategies"`
	// PointsMHz lists base operating points; empty means the full
	// table. Ignored for cpuspeed (which owns the frequency).
	PointsMHz []int `json:"points_mhz,omitempty"`

	// Resolved during validate so the expensive constructions happen
	// once: workload and strategy instances are built a single time and
	// reused by Run (they are stateless across runs — per-run state
	// lives in what Install returns), and Settle is parsed a single
	// time with its error surfaced at Parse.
	built  []workloads.Workload
	strats []dvs.Strategy
	settle sim.Duration
}

// WorkloadSpec names one workload instance.
type WorkloadSpec struct {
	// Kind is one of: ft, ep, cg, is, mg, lu, transpose, summa, swim,
	// mgrid, membench, cachebench, regbench, comm256k, comm4k.
	Kind string `json:"kind"`
	// Class is the NPB class for kernels that have one (default "A").
	Class string `json:"class,omitempty"`
	// Procs is the rank count for kernels that take one (default 8).
	Procs int `json:"procs,omitempty"`
	// Iters overrides the iteration/pass count where supported.
	Iters int `json:"iters,omitempty"`
	// Size is a size parameter (SUMMA's N; default 4096).
	Size int64 `json:"size,omitempty"`
}

// StrategySpec names one DVS strategy.
type StrategySpec struct {
	// Kind is one of: static, dynamic, cpuspeed, adaptive, slack.
	Kind string `json:"kind"`
	// Regions limits dynamic control to these PowerPack regions
	// (empty = all marked regions).
	Regions []string `json:"regions,omitempty"`
	// IntervalMS overrides the cpuspeed sampling interval.
	IntervalMS int `json:"interval_ms,omitempty"`
}

// Result is one cell of the campaign's cross product.
type Result struct {
	Campaign string  `json:"campaign"`
	Workload string  `json:"workload"`
	Strategy string  `json:"strategy"`
	Point    string  `json:"point"`
	EnergyJ  float64 `json:"energy_j"`
	DelayS   float64 `json:"delay_s"`
	Reps     int     `json:"reps_kept"`
	// PeakPowerW is the highest per-node sampled draw in the first
	// repetition (0 when the spec sets no trace interval).
	PeakPowerW float64 `json:"peak_power_w,omitempty"`
}

// Parse reads and validates a JSON spec.
func Parse(r io.Reader) (*Spec, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("campaign: %w", err)
	}
	if err := s.validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

func (s *Spec) validate() error {
	if len(s.Workloads) == 0 {
		return fmt.Errorf("campaign: no workloads")
	}
	if len(s.Strategies) == 0 {
		return fmt.Errorf("campaign: no strategies")
	}
	if s.Parallelism < 0 {
		return fmt.Errorf("campaign: negative parallelism")
	}
	if s.Shards < 0 {
		return fmt.Errorf("campaign: negative shard count")
	}
	if s.TraceIntervalMS < 0 {
		return fmt.Errorf("campaign: negative trace interval")
	}
	if s.TraceDir != "" && s.TraceIntervalMS == 0 {
		return fmt.Errorf("campaign: trace_dir requires trace_interval_ms")
	}
	s.built = make([]workloads.Workload, len(s.Workloads))
	for i := range s.Workloads {
		w, err := buildWorkload(s.Workloads[i])
		if err != nil {
			return err
		}
		s.built[i] = w
	}
	s.strats = make([]dvs.Strategy, len(s.Strategies))
	for i := range s.Strategies {
		st, err := buildStrategy(s.Strategies[i])
		if err != nil {
			return err
		}
		s.strats[i] = st
	}
	switch strings.ToLower(s.Net) {
	case "", "100mb", "1gb":
	default:
		return fmt.Errorf("campaign: unknown net %q", s.Net)
	}
	s.settle = 0
	if s.Settle != "" {
		d, err := time.ParseDuration(s.Settle)
		if err != nil {
			return fmt.Errorf("campaign: bad settle: %w", err)
		}
		s.settle = sim.Duration(d.Nanoseconds())
	}
	return nil
}

// buildWorkload constructs the named workload. NPB class letters and
// rank counts are validated here so a bad spec surfaces as a parse
// error rather than reaching (and panicking inside) the kernel
// constructors.
func buildWorkload(ws WorkloadSpec) (workloads.Workload, error) {
	kind := strings.ToLower(ws.Kind)
	class := byte('A')
	if ws.Class != "" {
		class = ws.Class[0]
	}
	switch kind {
	case "ft", "ep", "cg", "is", "mg", "lu":
		if len(ws.Class) > 1 || (class != 'A' && class != 'B' && class != 'C') {
			return nil, fmt.Errorf("campaign: unknown NPB class %q for %s (want A, B, or C)", ws.Class, kind)
		}
	}
	if ws.Procs < 0 {
		return nil, fmt.Errorf("campaign: negative procs for %s", kind)
	}
	procs := ws.Procs
	if procs == 0 {
		procs = 8
	}
	switch kind {
	case "ft":
		w := workloads.NewFT(class, procs)
		w.IterOverride = ws.Iters
		return w, nil
	case "ep":
		w := workloads.NewEP(class, procs)
		if ws.Size > 0 {
			w.PairsOverride = ws.Size
		}
		return w, nil
	case "cg":
		w := workloads.NewCG(class, procs)
		w.IterOverride = ws.Iters
		return w, nil
	case "is":
		w := workloads.NewIS(class, procs)
		w.IterOverride = ws.Iters
		return w, nil
	case "mg":
		w := workloads.NewMG(class, procs)
		w.IterOverride = ws.Iters
		return w, nil
	case "lu":
		w := workloads.NewLU(class, procs)
		w.IterOverride = ws.Iters
		return w, nil
	case "transpose":
		iters := ws.Iters
		if iters == 0 {
			iters = 1
		}
		return workloads.NewTranspose(iters), nil
	case "summa":
		n := ws.Size
		if n == 0 {
			n = 4096
		}
		grid := 2
		if ws.Procs == 9 {
			grid = 3
		} else if ws.Procs == 16 {
			grid = 4
		}
		return workloads.NewSumma(n, grid), nil
	case "swim":
		return workloads.NewSwim(orDefault(ws.Iters, 100)), nil
	case "mgrid":
		return workloads.NewMgrid(orDefault(ws.Iters, 100)), nil
	case "membench":
		return workloads.NewMemBench(orDefault(ws.Iters, 100)), nil
	case "cachebench":
		return workloads.NewCacheBench(orDefault(ws.Iters, 200000)), nil
	case "regbench":
		return workloads.NewRegBench(orDefault(ws.Iters, 5000)), nil
	case "comm256k":
		return workloads.NewCommBench256K(orDefault(ws.Iters, 400)), nil
	case "comm4k":
		return workloads.NewCommBench4K(orDefault(ws.Iters, 4000)), nil
	default:
		return nil, fmt.Errorf("campaign: unknown workload kind %q", ws.Kind)
	}
}

func orDefault(v, def int) int {
	if v > 0 {
		return v
	}
	return def
}

// buildStrategy constructs the named strategy.
func buildStrategy(ss StrategySpec) (dvs.Strategy, error) {
	switch strings.ToLower(ss.Kind) {
	case "static":
		return dvs.Static{}, nil
	case "dynamic":
		return dvs.NewDynamic(ss.Regions...), nil
	case "cpuspeed":
		d := dvs.NewCpuspeed()
		if ss.IntervalMS > 0 {
			d.Interval = sim.Duration(ss.IntervalMS) * sim.Millisecond
		}
		return d, nil
	case "adaptive":
		return dvs.NewAdaptive(), nil
	case "slack":
		return dvs.NewSlack(), nil
	default:
		return nil, fmt.Errorf("campaign: unknown strategy kind %q", ss.Kind)
	}
}

// config assembles the runner configuration from the spec, which must
// be resolved (Settle is parsed once, during validate).
func (s *Spec) config() cluster.Config {
	cfg := cluster.DefaultConfig()
	if s.Reps > 0 {
		cfg.Reps = s.Reps
	}
	if s.Settle != "" {
		cfg.Settle = s.settle
	}
	if strings.EqualFold(s.Net, "1gb") {
		cfg.Net = netsim.Gigabit()
	}
	if s.Seed != 0 {
		cfg.Seed = s.Seed
	}
	cfg.Parallelism = s.Parallelism
	cfg.Shards = s.Shards
	cfg.UseTrueEnergy = s.ExactEnergy
	if s.TraceIntervalMS > 0 {
		cfg.TraceInterval = sim.Duration(s.TraceIntervalMS) * sim.Millisecond
		if s.TraceDir != "" {
			dir, name := s.TraceDir, s.Name
			cfg.TraceSinks = func(info cluster.RunInfo) []trace.Sink {
				return []trace.Sink{trace.NewFileWriter(filepath.Join(dir, traceFileName(name, info)))}
			}
		}
	}
	return cfg
}

// traceFileName builds a filesystem-safe archive name for one run.
func traceFileName(campaign string, info cluster.RunInfo) string {
	clean := func(s string) string {
		return strings.Map(func(r rune) rune {
			switch {
			case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '.', r == '-':
				return r
			default:
				return '_'
			}
		}, s)
	}
	return fmt.Sprintf("%s-%s-%s-%s-%d.trc",
		clean(campaign), clean(info.Workload), clean(info.Strategy), clean(info.Label), info.Seed)
}

// points resolves the base operating-point indices to sweep.
func (s *Spec) points(table dvfs.Table) ([]int, error) {
	if len(s.PointsMHz) == 0 {
		out := make([]int, table.Len())
		for i := range out {
			out[i] = i
		}
		return out, nil
	}
	var out []int
	for _, mhz := range s.PointsMHz {
		idx := table.IndexOf(dvfs.Hz(mhz) * dvfs.MHz)
		if idx < 0 {
			return nil, fmt.Errorf("campaign: no operating point at %d MHz", mhz)
		}
		out = append(out, idx)
	}
	return out, nil
}

// cell is one entry of the campaign's cross product.
type cell struct {
	w     workloads.Workload
	strat dvs.Strategy
	idx   int
}

// cells expands the resolved spec into the flat, deterministic cell
// list the worker pool fans out over.
func (s *Spec) cells(idxs []int) []cell {
	var out []cell
	for _, w := range s.built {
		for _, strat := range s.strats {
			pts := idxs
			if strat.Name() == "cpuspeed" {
				pts = []int{0} // the daemon owns the frequency
			}
			for _, idx := range pts {
				out = append(out, cell{w: w, strat: strat, idx: idx})
			}
		}
	}
	return out
}

// orderedProgress re-serializes per-cell completion lines into
// submission order, so a parallel campaign reports the exact byte
// stream a sequential one does (lines for later cells are held until
// every earlier cell has reported).
type orderedProgress struct {
	fn      func(string)
	mu      sync.Mutex
	next    int
	pending map[int]string
}

func newOrderedProgress(fn func(string)) *orderedProgress {
	return &orderedProgress{fn: fn, pending: make(map[int]string)}
}

func (o *orderedProgress) done(i int, line string) {
	if o.fn == nil {
		return
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	o.pending[i] = line
	for {
		l, ok := o.pending[o.next]
		if !ok {
			return
		}
		delete(o.pending, o.next)
		o.next++
		o.fn(l)
	}
}

// Run executes the whole matrix and returns one Result per cell, in
// cross-product order. Cells are independent simulations and fan out
// across up to Parallelism workers; results (and progress lines, if
// progress is non-nil) are merged in submission order, so the output
// is bit-identical to a sequential run at any parallelism.
func Run(s *Spec, progress func(string)) ([]Result, error) {
	if s.built == nil {
		// Specs assembled in code (not via Parse) resolve here.
		if err := s.validate(); err != nil {
			return nil, err
		}
	}
	cfg := s.config()
	if s.TraceDir != "" {
		if err := os.MkdirAll(s.TraceDir, 0o755); err != nil {
			return nil, fmt.Errorf("campaign: %w", err)
		}
	}
	runner, err := cluster.NewRunner(cfg)
	if err != nil {
		return nil, err
	}
	idxs, err := s.points(cfg.Machine.Table)
	if err != nil {
		return nil, err
	}
	cells := s.cells(idxs)
	prog := newOrderedProgress(progress)
	return exec.Map(cfg.Parallelism, len(cells), func(i int) (Result, error) {
		c := cells[i]
		agg, err := runner.Run(c.w, c.strat, c.idx)
		if err != nil {
			return Result{}, fmt.Errorf("campaign: %s/%s: %w", c.w.Name(), c.strat.Name(), err)
		}
		energy := agg.EnergyACPI
		if cfg.UseTrueEnergy {
			energy = agg.EnergyTrue
		}
		label := cfg.Machine.Table.At(c.idx).Freq.String()
		if c.strat.Name() == "cpuspeed" {
			label = "auto"
		}
		res := Result{
			Campaign: s.Name,
			Workload: c.w.Name(),
			Strategy: c.strat.Name(),
			Point:    label,
			EnergyJ:  float64(energy),
			DelayS:   agg.Delay.Seconds(),
			Reps:     agg.Kept,
		}
		if st := agg.Runs[0].Trace; st != nil {
			for _, id := range st.Nodes() {
				p, perr := st.PeakPower(id)
				if perr != nil {
					return Result{}, fmt.Errorf("campaign: %s/%s: %w", c.w.Name(), c.strat.Name(), perr)
				}
				if float64(p) > res.PeakPowerW {
					res.PeakPowerW = float64(p)
				}
			}
		}
		prog.done(i, fmt.Sprintf("%s %s@%s: %.0f J, %.2f s",
			res.Workload, res.Strategy, res.Point, res.EnergyJ, res.DelayS))
		return res, nil
	})
}

// WriteJSON emits the results as a JSON array.
func WriteJSON(w io.Writer, results []Result) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(results)
}

// WriteTable emits the results as a fixed-width table, normalizing each
// (workload, strategy) group to its first point.
func WriteTable(w io.Writer, results []Result) error {
	base := map[string]Result{}
	if _, err := fmt.Fprintf(w, "%-14s %-10s %-8s %12s %10s %8s %8s\n",
		"workload", "strategy", "point", "energy(J)", "delay(s)", "E/E0", "D/D0"); err != nil {
		return err
	}
	for _, r := range results {
		key := r.Workload + "/" + r.Strategy
		b, ok := base[key]
		if !ok {
			b = r
			base[key] = r
		}
		if _, err := fmt.Fprintf(w, "%-14s %-10s %-8s %12.1f %10.2f %8.3f %8.3f\n",
			r.Workload, r.Strategy, r.Point, r.EnergyJ, r.DelayS,
			r.EnergyJ/b.EnergyJ, r.DelayS/b.DelayS); err != nil {
			return err
		}
	}
	return nil
}
