package campaign

import (
	"reflect"
	"strings"
	"testing"
)

// parSpec returns a parsed copy of the mini campaign with the given
// parallelism. Each call parses afresh so the two sides of an
// equivalence test share no resolved state.
func parSpec(t testing.TB, parallelism int) *Spec {
	t.Helper()
	s, err := Parse(strings.NewReader(miniSpec))
	if err != nil {
		t.Fatal(err)
	}
	s.Parallelism = parallelism
	return s
}

// TestCampaignParallelEquivalence is the acceptance gate for the
// campaign fan-out: Parallelism 1 and 8 must produce identical
// []Result — down to the serialized bytes — and the same progress
// stream in the same order.
func TestCampaignParallelEquivalence(t *testing.T) {
	var seqLines []string
	seq, err := Run(parSpec(t, 1), func(l string) { seqLines = append(seqLines, l) })
	if err != nil {
		t.Fatal(err)
	}
	var parLines []string
	par, err := Run(parSpec(t, 8), func(l string) { parLines = append(parLines, l) })
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Errorf("parallel results differ:\nseq %+v\npar %+v", seq, par)
	}
	var seqJSON, parJSON strings.Builder
	if err := WriteJSON(&seqJSON, seq); err != nil {
		t.Fatal(err)
	}
	if err := WriteJSON(&parJSON, par); err != nil {
		t.Fatal(err)
	}
	if seqJSON.String() != parJSON.String() {
		t.Errorf("result JSON differs:\nseq %s\npar %s", seqJSON.String(), parJSON.String())
	}
	if !reflect.DeepEqual(seqLines, parLines) {
		t.Errorf("progress lines differ:\nseq %q\npar %q", seqLines, parLines)
	}
}

// TestRunHandBuiltSpec covers the code path where a Spec is assembled
// in Go rather than parsed from JSON: Run must resolve (and validate)
// it itself.
func TestRunHandBuiltSpec(t *testing.T) {
	s := &Spec{
		Name:        "handmade",
		Reps:        1,
		Settle:      "30s",
		ExactEnergy: true,
		Workloads:   []WorkloadSpec{{Kind: "swim", Iters: 10}},
		Strategies:  []StrategySpec{{Kind: "static"}},
		PointsMHz:   []int{1400},
	}
	results, err := Run(s, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 || results[0].EnergyJ <= 0 {
		t.Fatalf("results %+v", results)
	}

	bad := &Spec{
		Workloads:  []WorkloadSpec{{Kind: "swim"}},
		Strategies: []StrategySpec{{Kind: "static"}},
		Settle:     "soon",
	}
	if _, err := Run(bad, nil); err == nil {
		t.Fatal("hand-built spec with bad settle must fail in Run")
	}
	neg := &Spec{
		Workloads:   []WorkloadSpec{{Kind: "swim"}},
		Strategies:  []StrategySpec{{Kind: "static"}},
		Parallelism: -2,
	}
	if _, err := Run(neg, nil); err == nil {
		t.Fatal("negative parallelism must fail in Run")
	}
}

// TestBuildWorkloadRejectsUnknownClass pins the satellite fix: an NPB
// class outside {A, B, C} must surface as a spec error, not a panic
// inside the kernel constructors.
func TestBuildWorkloadRejectsUnknownClass(t *testing.T) {
	for _, class := range []string{"Z", "D", "a", "AB"} {
		for _, kind := range []string{"ft", "ep", "cg", "is", "mg", "lu"} {
			if _, err := buildWorkload(WorkloadSpec{Kind: kind, Class: class}); err == nil {
				t.Errorf("%s class %q: expected error", kind, class)
			}
		}
	}
	// Non-NPB kinds ignore Class entirely.
	if _, err := buildWorkload(WorkloadSpec{Kind: "swim", Class: "Z"}); err != nil {
		t.Errorf("swim must ignore class: %v", err)
	}
	// Negative rank counts are rejected before reaching a constructor.
	if _, err := buildWorkload(WorkloadSpec{Kind: "ft", Class: "A", Procs: -1}); err == nil {
		t.Error("negative procs: expected error")
	}
}

// TestSettleParsedOnce verifies the resolved settle duration is fixed
// at Parse time and actually reaches the runner config.
func TestSettleParsedOnce(t *testing.T) {
	s, err := Parse(strings.NewReader(miniSpec))
	if err != nil {
		t.Fatal(err)
	}
	want := s.settle
	if want <= 0 {
		t.Fatalf("settle not resolved at Parse: %v", want)
	}
	if got := s.config().Settle; got != want {
		t.Fatalf("config settle %v, resolved %v", got, want)
	}
}

// benchSpec is an 8-cell matrix (2 workloads × static × 4 points) used
// by the campaign throughput benchmarks; BENCH_sim.json records the
// sequential-vs-parallel pair so the fan-out speedup is tracked on
// multi-core runners.
const benchSpec = `{
	"name": "bench8",
	"reps": 1,
	"settle": "30s",
	"exact_energy": true,
	"workloads": [
		{"kind": "swim", "iters": 40},
		{"kind": "membench", "iters": 40}
	],
	"strategies": [{"kind": "static"}],
	"points_mhz": [1400, 1200, 1000, 800]
}`

func benchCampaign(b *testing.B, parallelism int) {
	b.Helper()
	s, err := Parse(strings.NewReader(benchSpec))
	if err != nil {
		b.Fatal(err)
	}
	s.Parallelism = parallelism
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		results, err := Run(s, nil)
		if err != nil {
			b.Fatal(err)
		}
		if len(results) != 8 {
			b.Fatalf("%d results", len(results))
		}
	}
}

// BenchmarkCampaign8Seq and BenchmarkCampaign8Par run the same 8-cell
// matrix at parallelism 1 and 8; their ratio is the campaign fan-out
// speedup for the machine the benchmark ran on.
func BenchmarkCampaign8Seq(b *testing.B) { benchCampaign(b, 1) }

func BenchmarkCampaign8Par(b *testing.B) { benchCampaign(b, 8) }
