package campaign

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/trace"
)

const miniSpec = `{
	"name": "mini",
	"reps": 1,
	"settle": "30s",
	"exact_energy": true,
	"workloads": [
		{"kind": "swim", "iters": 20},
		{"kind": "ft", "class": "A", "procs": 4, "iters": 1}
	],
	"strategies": [
		{"kind": "static"},
		{"kind": "cpuspeed"}
	],
	"points_mhz": [1400, 600]
}`

func TestParseValid(t *testing.T) {
	s, err := Parse(strings.NewReader(miniSpec))
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "mini" || len(s.Workloads) != 2 || len(s.Strategies) != 2 {
		t.Fatalf("spec %+v", s)
	}
}

func TestParseRejectsBadSpecs(t *testing.T) {
	cases := []string{
		`{`, // malformed
		`{"workloads": [], "strategies": [{"kind":"static"}]}`,                // no workloads
		`{"workloads": [{"kind":"swim"}], "strategies": []}`,                  // no strategies
		`{"workloads": [{"kind":"nope"}], "strategies": [{"kind":"static"}]}`, // bad workload
		`{"workloads": [{"kind":"swim"}], "strategies": [{"kind":"nope"}]}`,   // bad strategy
		`{"workloads": [{"kind":"swim"}], "strategies": [{"kind":"static"}], "net": "carrier-pigeon"}`,
		`{"workloads": [{"kind":"swim"}], "strategies": [{"kind":"static"}], "settle": "soon"}`,
		`{"workloads": [{"kind":"swim"}], "strategies": [{"kind":"static"}], "bogus": 1}`,                 // unknown field
		`{"workloads": [{"kind":"swim"}], "strategies": [{"kind":"static"}], "trace_interval_ms": -1}`,    // negative trace interval
		`{"workloads": [{"kind":"swim"}], "strategies": [{"kind":"static"}], "trace_dir": "/tmp/traces"}`, // dir without interval
	}
	for i, c := range cases {
		if _, err := Parse(strings.NewReader(c)); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestBuildAllWorkloadKinds(t *testing.T) {
	kinds := []string{"ft", "ep", "cg", "is", "mg", "lu", "transpose",
		"summa", "swim", "mgrid", "membench", "cachebench", "regbench",
		"comm256k", "comm4k"}
	for _, k := range kinds {
		ws := WorkloadSpec{Kind: k, Procs: 4}
		if k == "summa" {
			ws.Size = 1024
			ws.Procs = 4
		}
		w, err := buildWorkload(ws)
		if err != nil {
			t.Fatalf("%s: %v", k, err)
		}
		if w.Name() == "" || w.Ranks() < 1 {
			t.Fatalf("%s: bad workload", k)
		}
	}
}

func TestBuildAllStrategyKinds(t *testing.T) {
	for _, k := range []string{"static", "dynamic", "cpuspeed", "adaptive", "slack"} {
		s, err := buildStrategy(StrategySpec{Kind: k, IntervalMS: 500})
		if err != nil {
			t.Fatalf("%s: %v", k, err)
		}
		if s.Name() == "" {
			t.Fatalf("%s: no name", k)
		}
	}
}

func TestPointsResolution(t *testing.T) {
	s, err := Parse(strings.NewReader(miniSpec))
	if err != nil {
		t.Fatal(err)
	}
	idxs, err := s.points(s.config().Machine.Table)
	if err != nil {
		t.Fatal(err)
	}
	if len(idxs) != 2 || idxs[0] != 0 || idxs[1] != 4 {
		t.Fatalf("points %v", idxs)
	}
	s.PointsMHz = nil
	idxs, err = s.points(s.config().Machine.Table)
	if err != nil || len(idxs) != 5 {
		t.Fatalf("all points: %v %v", idxs, err)
	}
	s.PointsMHz = []int{333}
	if _, err := s.points(s.config().Machine.Table); err == nil {
		t.Fatal("unknown MHz must error")
	}
}

func TestRunMiniCampaign(t *testing.T) {
	s, err := Parse(strings.NewReader(miniSpec))
	if err != nil {
		t.Fatal(err)
	}
	var lines []string
	results, err := Run(s, func(l string) { lines = append(lines, l) })
	if err != nil {
		t.Fatal(err)
	}
	// 2 workloads × (static×2 points + cpuspeed×1) = 6 cells.
	if len(results) != 6 {
		t.Fatalf("%d results", len(results))
	}
	if len(lines) != len(results) {
		t.Fatalf("%d progress lines", len(lines))
	}
	for _, r := range results {
		if r.EnergyJ <= 0 || r.DelayS <= 0 || r.Reps != 1 || r.Campaign != "mini" {
			t.Fatalf("bad result %+v", r)
		}
	}
	// Static at 600 saves energy vs 1400 on swim.
	var e1400, e600 float64
	for _, r := range results {
		if r.Workload == "swim" && r.Strategy == "static" {
			if r.Point == "1.4GHz" {
				e1400 = r.EnergyJ
			} else {
				e600 = r.EnergyJ
			}
		}
	}
	if e600 >= e1400 {
		t.Fatalf("600MHz did not save energy: %v vs %v", e600, e1400)
	}
}

func TestCampaignTraceArchiving(t *testing.T) {
	dir := t.TempDir()
	s := &Spec{
		Name:            "traced",
		Reps:            1,
		Settle:          "30s",
		ExactEnergy:     true,
		TraceIntervalMS: 250,
		TraceDir:        dir,
		Workloads:       []WorkloadSpec{{Kind: "swim", Iters: 20}},
		Strategies:      []StrategySpec{{Kind: "static"}},
		PointsMHz:       []int{1400},
	}
	results, err := Run(s, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 {
		t.Fatalf("%d results", len(results))
	}
	if results[0].PeakPowerW <= 0 {
		t.Fatalf("no peak power: %+v", results[0])
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("%d archives for 1 cell × 1 rep", len(entries))
	}
	name := entries[0].Name()
	if !strings.HasPrefix(name, "traced-swim-static-1.4GHz-") || !strings.HasSuffix(name, ".trc") {
		t.Fatalf("archive name %q", name)
	}
	// The archive replays: its peak matches the reported one.
	f, err := os.Open(filepath.Join(dir, name))
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := f.Close(); err != nil {
			t.Error(err)
		}
	}()
	rd, err := trace.NewReader(f)
	if err != nil {
		t.Fatal(err)
	}
	st := trace.NewStats()
	if err := rd.Replay(st); err != nil {
		t.Fatal(err)
	}
	var peak float64
	for _, id := range st.Nodes() {
		p, err := st.PeakPower(id)
		if err != nil {
			t.Fatal(err)
		}
		if float64(p) > peak {
			peak = float64(p)
		}
	}
	if peak != results[0].PeakPowerW {
		t.Fatalf("replayed peak %v, reported %v", peak, results[0].PeakPowerW)
	}
}

func TestOutputFormats(t *testing.T) {
	results := []Result{
		{Campaign: "x", Workload: "swim", Strategy: "static", Point: "1.4GHz", EnergyJ: 100, DelayS: 10, Reps: 1},
		{Campaign: "x", Workload: "swim", Strategy: "static", Point: "600MHz", EnergyJ: 64, DelayS: 11.8, Reps: 1},
	}
	var jsonOut strings.Builder
	if err := WriteJSON(&jsonOut, results); err != nil {
		t.Fatal(err)
	}
	var parsed []Result
	if err := json.Unmarshal([]byte(jsonOut.String()), &parsed); err != nil {
		t.Fatal(err)
	}
	if len(parsed) != 2 || parsed[1].EnergyJ != 64 {
		t.Fatalf("round trip %+v", parsed)
	}
	var tbl strings.Builder
	if err := WriteTable(&tbl, results); err != nil {
		t.Fatal(err)
	}
	out := tbl.String()
	if !strings.Contains(out, "0.640") || !strings.Contains(out, "1.180") {
		t.Fatalf("table:\n%s", out)
	}
}
