package cluster

import (
	"bytes"
	"testing"

	"repro/internal/dvs"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// TestGoldenTraceEquivalence64Ranks pins the streaming pipeline's
// migration guarantee on a large run: for a 64-rank workload, the CSV
// streamed live during the simulation, the CSV re-encoded from the
// binary archive of the same run, and the replayed per-node statistics
// all agree — the binary format loses nothing, and the streaming path
// reproduces the retained-slice export byte for byte (the CSV format
// is pinned against the seed's formatting in the trace package tests).
func TestGoldenTraceEquivalence64Ranks(t *testing.T) {
	if testing.Short() {
		t.Skip("64-rank run")
	}
	ft := workloads.NewFT('A', 64)
	ft.IterOverride = 1

	var liveCSV, archive bytes.Buffer
	cfg := DefaultConfig()
	cfg.Settle = 30 * sim.Second
	cfg.Reps = 1
	cfg.UseTrueEnergy = true
	cfg.TraceInterval = 250 * sim.Millisecond
	cfg.TraceSinks = func(RunInfo) []trace.Sink {
		return []trace.Sink{trace.NewCSV(&liveCSV), trace.NewWriter(&archive)}
	}
	res, err := MustRunner(cfg).RunOnce(ft, dvs.Static{}, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace == nil || res.Trace.Ticks() == 0 {
		t.Fatal("no trace stats")
	}
	if got := len(res.Trace.Nodes()); got != 64 {
		t.Fatalf("%d traced nodes", got)
	}

	rd, err := trace.NewReader(bytes.NewReader(archive.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var replayCSV bytes.Buffer
	replayStats := trace.NewStats()
	if err := rd.Replay(trace.NewCSV(&replayCSV), replayStats); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(replayCSV.Bytes(), liveCSV.Bytes()) {
		t.Fatal("CSV replayed from the binary archive differs from the live CSV")
	}
	if replayStats.Ticks() != res.Trace.Ticks() {
		t.Fatalf("replayed %d ticks, live %d", replayStats.Ticks(), res.Trace.Ticks())
	}
	for _, id := range res.Trace.Nodes() {
		want, err := res.Trace.MeanPower(id)
		if err != nil {
			t.Fatal(err)
		}
		got, err := replayStats.MeanPower(id)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("node %d: replayed mean %v, live %v", id, got, want)
		}
	}
	// The archive is far smaller than the CSV it reproduces.
	if archive.Len() >= liveCSV.Len()/4 {
		t.Errorf("binary archive %d B vs CSV %d B: compression lost", archive.Len(), liveCSV.Len())
	}
}
