package cluster

// Shape tests: assert that the simulated cluster reproduces the
// qualitative results of every figure and table in the paper, with
// tolerances. Absolute joules and seconds are not expected to match the
// authors' testbed; who wins, by roughly what factor, and where the
// crossovers fall must. EXPERIMENTS.md records the paper-vs-measured
// numbers these tests pin down.

import (
	"testing"

	"repro/internal/core"
	"repro/internal/dvfs"
	"repro/internal/dvs"
	"repro/internal/sim"
	"repro/internal/workloads"
)

// shapeRunner: single repetition, exact energy, short settle — the
// ratios are deterministic, so repetitions add nothing here.
func shapeRunner() *Runner {
	cfg := DefaultConfig()
	cfg.Settle = 30 * sim.Second
	cfg.Reps = 1
	cfg.UseTrueEnergy = true
	return MustRunner(cfg)
}

func sweep(t *testing.T, w workloads.Workload, strat dvs.Strategy) core.Crescendo {
	t.Helper()
	c, err := shapeRunner().Sweep(w, strat)
	if err != nil {
		t.Fatal(err)
	}
	return c.Normalized(0)
}

func inBand(t *testing.T, name string, got, lo, hi float64) {
	t.Helper()
	if got < lo || got > hi {
		t.Errorf("%s = %.4f outside [%.4f, %.4f]", name, got, lo, hi)
	}
}

func assertMonotone(t *testing.T, c core.Crescendo, energyDown, delayUp bool) {
	t.Helper()
	for i := 1; i < len(c.Points); i++ {
		if energyDown && c.Points[i].Energy >= c.Points[i-1].Energy {
			t.Errorf("energy not decreasing at %v: %.4f >= %.4f",
				c.Points[i].Freq, c.Points[i].Energy, c.Points[i-1].Energy)
		}
		if delayUp && c.Points[i].Delay <= c.Points[i-1].Delay {
			t.Errorf("delay not increasing at %v", c.Points[i].Freq)
		}
	}
}

// Fig. 6: memory microbenchmark. Paper: E(600)=0.593, D(600)=1.054.
func TestShapeFig6MemoryBench(t *testing.T) {
	c := sweep(t, workloads.NewMemBench(40), dvs.Static{})
	assertMonotone(t, c, true, true)
	inBand(t, "mem E(600)", c.Points[4].Energy, 0.55, 0.65)
	inBand(t, "mem D(600)", c.Points[4].Delay, 1.03, 1.08)
	// Best energy point is the lowest frequency.
	if c.Best(core.DeltaEnergy) != 4 {
		t.Error("memory bench energy best should be 600MHz")
	}
}

// Fig. 7: CPU-bound (L2) microbenchmark. Paper: delay near-linear in
// 1/f (134% loss at 600), energy minimum interior (at 800), energy
// rising again at 600.
func TestShapeFig7CacheBench(t *testing.T) {
	c := sweep(t, workloads.NewCacheBench(200000), dvs.Static{})
	assertMonotone(t, c, false, true)
	inBand(t, "L2 D(600)", c.Points[4].Delay, 2.28, 2.45)
	best := c.Best(core.DeltaEnergy)
	if best == 0 || best == 4 {
		t.Errorf("L2 energy best should be interior, got %v", c.Points[best].Freq)
	}
	if c.Points[4].Energy <= c.Points[best].Energy {
		t.Error("energy must rise again at 600MHz")
	}
	// Energy stays within a few percent of the top point everywhere —
	// DVS cannot help CPU-bound code much.
	for _, p := range c.Points {
		inBand(t, "L2 E("+p.Freq.String()+")", p.Energy, 0.90, 1.02)
	}
}

// Fig. 7 (register variant): the lowest operating point consumes the
// most energy and takes by far the longest.
func TestShapeFig7RegisterBench(t *testing.T) {
	c := sweep(t, workloads.NewRegBench(4000), dvs.Static{})
	inBand(t, "reg D(600)", c.Points[4].Delay, 2.28, 2.50)
	// 600 MHz must not be the energy winner for register-bound code.
	if c.Best(core.DeltaEnergy) == 4 {
		t.Error("600MHz should not win on energy for register code")
	}
}

// Fig. 8(a): 256 KB round trip. Paper: E(600) -30.1%, D(600) +6%.
func TestShapeFig8aComm256K(t *testing.T) {
	c := sweep(t, workloads.NewCommBench256K(400), dvs.Static{})
	assertMonotone(t, c, true, true)
	inBand(t, "256K E(600)", c.Points[4].Energy, 0.63, 0.75)
	inBand(t, "256K D(600)", c.Points[4].Delay, 1.03, 1.09)
}

// Fig. 8(b): 4 KB messages with 64 B stride. Paper: E(600) -36%,
// D(600) +4%.
func TestShapeFig8bComm4K(t *testing.T) {
	c := sweep(t, workloads.NewCommBench4K(4000), dvs.Static{})
	assertMonotone(t, c, true, true)
	inBand(t, "4K E(600)", c.Points[4].Energy, 0.62, 0.75)
	inBand(t, "4K D(600)", c.Points[4].Delay, 1.02, 1.09)
}

// Fig. 1 / Table 1: swim vs mgrid crescendos and their best operating
// points under the three weight presets.
func TestShapeTable1SwimMgrid(t *testing.T) {
	swim := sweep(t, workloads.NewSwim(100), dvs.Static{})
	mgrid := sweep(t, workloads.NewMgrid(100), dvs.Static{})

	// Both monotone: energy falls, delay grows.
	assertMonotone(t, swim, true, true)
	assertMonotone(t, mgrid, true, true)

	// swim conserves far more energy per unit slowdown than mgrid.
	if swim.Points[4].Energy >= mgrid.Points[4].Energy {
		t.Error("swim must save more energy at 600MHz than mgrid")
	}
	if swim.Points[4].Delay >= mgrid.Points[4].Delay {
		t.Error("swim must slow down less at 600MHz than mgrid")
	}
	inBand(t, "mgrid D(600)", mgrid.Points[4].Delay, 1.8, 2.2)
	inBand(t, "swim D(600)", swim.Points[4].Delay, 1.1, 1.3)

	// Table 1 selections.
	sw := swim.SelectOperatingPoints()
	mg := mgrid.SelectOperatingPoints()
	if sw.HPC.Freq != 1000*dvfs.MHz {
		t.Errorf("swim HPC best %v, paper says 1000MHz", sw.HPC.Freq)
	}
	if sw.Energy.Freq != 600*dvfs.MHz || sw.Performance.Freq != 1400*dvfs.MHz {
		t.Errorf("swim energy/perf best %v/%v", sw.Energy.Freq, sw.Performance.Freq)
	}
	if mg.HPC.Freq != 1400*dvfs.MHz {
		t.Errorf("mgrid HPC best %v, paper says 1400MHz", mg.HPC.Freq)
	}
	if mg.Energy.Freq != 600*dvfs.MHz || mg.Performance.Freq != 1400*dvfs.MHz {
		t.Errorf("mgrid energy/perf best %v/%v", mg.Energy.Freq, mg.Performance.Freq)
	}
}

// Fig. 3 / Table 3: FT class B on 8 nodes, static crescendo and the
// cpuspeed point. Paper: static E(600)=0.655, D(600)=1.068; cpuspeed
// sits near the static 1.4 GHz point (E=0.966, D=0.988).
func TestShapeFig3FTB(t *testing.T) {
	ft := workloads.NewFT('B', 8)
	ft.IterOverride = 2
	c := sweep(t, ft, dvs.Static{})
	assertMonotone(t, c, true, true)
	inBand(t, "FT.B E(600)", c.Points[4].Energy, 0.62, 0.72)
	inBand(t, "FT.B D(600)", c.Points[4].Delay, 1.05, 1.12)

	// Table 3: energy best 600, performance best 1400. (The paper's
	// HPC pick of 1000MHz is a near-tie with 600MHz in its own data;
	// see EXPERIMENTS.md.)
	ops := c.SelectOperatingPoints()
	if ops.Energy.Freq != 600*dvfs.MHz || ops.Performance.Freq != 1400*dvfs.MHz {
		t.Errorf("FT.B energy/perf best %v/%v", ops.Energy.Freq, ops.Performance.Freq)
	}

	// cpuspeed: "note the similarity to statically controlled DVS at
	// 1.4 GHz".
	r := shapeRunner()
	base, err := r.Run(ft, dvs.Static{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	pt, err := r.RunCpuspeed(ft, dvs.NewCpuspeed())
	if err != nil {
		t.Fatal(err)
	}
	eRatio := pt.Energy / float64(base.EnergyTrue)
	dRatio := pt.Delay / base.Delay.Seconds()
	inBand(t, "FT.B cpuspeed E", eRatio, 0.90, 1.03)
	inBand(t, "FT.B cpuspeed D", dRatio, 0.97, 1.06)
	// And it must conserve far less than static 600MHz does.
	if eRatio < c.Points[4].Energy+0.15 {
		t.Errorf("cpuspeed E ratio %.3f too close to static-600 %.3f", eRatio, c.Points[4].Energy)
	}
}

// Fig. 4: FT class C, static vs dynamic-on-fft(). Paper: static 600
// saves 33.7% at +9.9%; dynamic from 1.4 down to 600 saves 32.6% at
// +7.8%; dynamic barely varies across base points.
func TestShapeFig4FTCDynamic(t *testing.T) {
	ft := workloads.NewFT('C', 8)
	ft.IterOverride = 1
	r := shapeRunner()

	staticTop, err := r.Run(ft, dvs.Static{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	static600, err := r.Run(ft, dvs.Static{}, 4)
	if err != nil {
		t.Fatal(err)
	}
	dyn := dvs.NewDynamic(workloads.RegionFFT)
	dynTop, err := r.Run(ft, dyn, 0)
	if err != nil {
		t.Fatal(err)
	}
	dyn600, err := r.Run(ft, dyn, 4)
	if err != nil {
		t.Fatal(err)
	}

	s600E := float64(static600.EnergyTrue) / float64(staticTop.EnergyTrue)
	s600D := static600.Delay.Seconds() / staticTop.Delay.Seconds()
	inBand(t, "FT.C static600 E", s600E, 0.62, 0.72)
	inBand(t, "FT.C static600 D", s600D, 1.05, 1.12)

	dTopE := float64(dynTop.EnergyTrue) / float64(staticTop.EnergyTrue)
	dTopD := dynTop.Delay.Seconds() / staticTop.Delay.Seconds()
	inBand(t, "FT.C dyn@1.4 E", dTopE, 0.64, 0.76)
	inBand(t, "FT.C dyn@1.4 D", dTopD, 1.04, 1.11)

	// Dynamic mode barely changes across base points ("energy and
	// delay doesn't change much under different operating points").
	dSpread := float64(dyn600.EnergyTrue) / float64(dynTop.EnergyTrue)
	if dSpread < 0.95 || dSpread > 1.05 {
		t.Errorf("dynamic energy spread %.3f across base points", dSpread)
	}
	// Dynamic at 600 is a touch slower than static 600 at the same
	// point (transition overhead), never faster by much.
	if dyn600.Delay < static600.Delay-sim.Duration(static600.Delay/100) {
		t.Errorf("dynamic@600 %v much faster than static@600 %v", dyn600.Delay, static600.Delay)
	}
}

// Fig. 5: parallel matrix transpose on 15 procs. Paper: static 800
// saves 16.2% at +0.78%; static 600 saves 19.7% at +2.4%; dynamic
// barely changes delay across points.
func TestShapeFig5Transpose(t *testing.T) {
	tr := workloads.NewTranspose(1)
	c := sweep(t, tr, dvs.Static{})
	assertMonotone(t, c, true, true)
	inBand(t, "transpose E(800)", c.Points[3].Energy, 0.79, 0.88)
	inBand(t, "transpose D(800)", c.Points[3].Delay, 1.005, 1.03)
	inBand(t, "transpose E(600)", c.Points[4].Energy, 0.74, 0.84)
	inBand(t, "transpose D(600)", c.Points[4].Delay, 1.01, 1.06)

	// Energy best is static 600 (paper).
	if c.Best(core.DeltaEnergy) != 4 {
		t.Error("transpose energy best should be 600MHz")
	}

	// Dynamic control: delay flat, energy below static at the same
	// point.
	r := shapeRunner()
	dyn := dvs.NewDynamic(workloads.RegionStep2, workloads.RegionStep3)
	dynTop, err := r.Run(tr, dyn, 0)
	if err != nil {
		t.Fatal(err)
	}
	staticTop, err := r.Run(tr, dvs.Static{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if dynTop.EnergyTrue >= staticTop.EnergyTrue {
		t.Error("dynamic must save energy vs static at the top point")
	}
	dD := dynTop.Delay.Seconds() / staticTop.Delay.Seconds()
	inBand(t, "transpose dyn@1.4 D", dD, 0.99, 1.06)
}

// The paper's headline: 30%+ total energy savings with <10% (at times
// <5%) performance impact on real parallel applications.
func TestShapeHeadlineClaim(t *testing.T) {
	ft := workloads.NewFT('B', 8)
	ft.IterOverride = 2
	c := sweep(t, ft, dvs.Static{})
	saved := 1 - c.Points[4].Energy
	slowdown := c.Points[4].Delay - 1
	if saved < 0.25 {
		t.Errorf("only %.1f%% energy saved", saved*100)
	}
	if slowdown > 0.12 {
		t.Errorf("slowdown %.1f%% too large", slowdown*100)
	}
}

// Extended suite (beyond the paper's figures): the further NAS kernels
// fall into the regimes the microbenchmarks isolate.
func TestShapeExtendedNPBKernels(t *testing.T) {
	ep := workloads.NewEP('A', 8)
	ep.PairsOverride = 1 << 24
	cg := workloads.NewCG('A', 8)
	cg.IterOverride = 5
	is := workloads.NewIS('A', 8)
	is.IterOverride = 3

	epC := sweep(t, ep, dvs.Static{})
	cgC := sweep(t, cg, dvs.Static{})
	isC := sweep(t, is, dvs.Static{})

	// EP: compute bound — near-linear slowdown, energy barely moves.
	inBand(t, "EP D(600)", epC.Points[4].Delay, 2.1, 2.4)
	inBand(t, "EP E(600)", epC.Points[4].Energy, 0.90, 1.02)
	if epC.Best(core.DeltaHPC) != 0 {
		t.Error("EP HPC best must be the top frequency")
	}

	// CG: memory bound — big savings, small slowdown.
	inBand(t, "CG E(600)", cgC.Points[4].Energy, 0.60, 0.72)
	inBand(t, "CG D(600)", cgC.Points[4].Delay, 1.04, 1.12)

	// IS: exchange dominated — comm-benchmark-like crescendo.
	inBand(t, "IS E(600)", isC.Points[4].Energy, 0.62, 0.75)
	inBand(t, "IS D(600)", isC.Points[4].Delay, 1.03, 1.10)

	// Regime ordering: EP saves the least, and slows the most.
	if epC.Points[4].Energy <= cgC.Points[4].Energy || epC.Points[4].Energy <= isC.Points[4].Energy {
		t.Error("EP must save the least energy at 600MHz")
	}
	if epC.Points[4].Delay <= cgC.Points[4].Delay || epC.Points[4].Delay <= isC.Points[4].Delay {
		t.Error("EP must slow the most at 600MHz")
	}
}

// The adaptive governor converges near the hand-tuned dynamic result on
// FT without a human choosing the region point.
func TestShapeAdaptiveGovernor(t *testing.T) {
	ft := workloads.NewFT('B', 8)
	ft.IterOverride = 10
	r := shapeRunner()
	top, err := r.Run(ft, dvs.Static{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	hand, err := r.Run(ft, dvs.NewDynamic(workloads.RegionFFT), 0)
	if err != nil {
		t.Fatal(err)
	}
	auto, err := r.Run(ft, dvs.NewAdaptive(), 0)
	if err != nil {
		t.Fatal(err)
	}
	handE := float64(hand.EnergyTrue) / float64(top.EnergyTrue)
	autoE := float64(auto.EnergyTrue) / float64(top.EnergyTrue)
	if autoE >= 0.97 {
		t.Errorf("adaptive saved almost nothing: E=%.3f", autoE)
	}
	// Within 12 points of hand-tuned despite paying for its probing.
	if autoE > handE+0.12 {
		t.Errorf("adaptive E=%.3f too far from hand-tuned %.3f", autoE, handE)
	}
	if d := auto.Delay.Seconds() / top.Delay.Seconds(); d > 1.12 {
		t.Errorf("adaptive slowdown %.3f too large", d)
	}
}

// SUMMA (dense GEMM on a process grid over sub-communicators) behaves
// like the compute-bound regime with a visible communication phase.
func TestShapeSummaAndWavefront(t *testing.T) {
	su := workloads.NewSumma(4096, 2)
	c := sweep(t, su, dvs.Static{})
	// GEMM is compute bound: large slowdown, modest savings.
	inBand(t, "summa D(600)", c.Points[4].Delay, 1.5, 2.2)
	inBand(t, "summa E(600)", c.Points[4].Energy, 0.78, 0.95)
	if c.Best(core.DeltaHPC) != 0 {
		t.Error("SUMMA HPC best must be the top frequency")
	}

	// LU's wavefront: latency-bound chatter, still compute-heavy per
	// plane — between EP and FT.
	lu := workloads.NewLU('A', 8)
	lu.IterOverride = 5
	lc := sweep(t, lu, dvs.Static{})
	inBand(t, "LU D(600)", lc.Points[4].Delay, 1.5, 2.1)
	inBand(t, "LU E(600)", lc.Points[4].Energy, 0.80, 0.95)

	// MG mixes fine memory-bound levels with coarse latency-bound
	// ones: savings between the memory and compute extremes.
	mg := workloads.NewMG('A', 8)
	mg.IterOverride = 2
	mc := sweep(t, mg, dvs.Static{})
	inBand(t, "MG E(600)", mc.Points[4].Energy, 0.60, 0.75)
	inBand(t, "MG D(600)", mc.Points[4].Delay, 1.10, 1.35)
}
