package cluster

import (
	"encoding/json"
	"reflect"
	"testing"

	"repro/internal/dvs"
	"repro/internal/sim"
	"repro/internal/workloads"
)

// parallelTestConfig returns a small apparatus that still exercises the
// battery protocol (ACPI energies, jittered charge phases) so the
// equivalence tests cover the full measurement pipeline, not just the
// integrator.
func parallelTestConfig(parallelism int) Config {
	cfg := DefaultConfig()
	cfg.Settle = 30 * sim.Second
	cfg.Reps = 4
	cfg.Parallelism = parallelism
	return cfg
}

// TestRunParallelEquivalence pins the determinism guarantee for the
// per-repetition fan-out: a parallel Run must produce an Aggregate
// deeply identical to the sequential one (every repetition's per-node
// energies, profiles, and outlier-rejected means included).
func TestRunParallelEquivalence(t *testing.T) {
	w := workloads.NewSwim(20)
	seq, err := MustRunner(parallelTestConfig(1)).Run(w, dvs.Static{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	par, err := MustRunner(parallelTestConfig(8)).Run(w, dvs.Static{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(par.Runs) != 4 {
		t.Fatalf("%d runs", len(par.Runs))
	}
	if !reflect.DeepEqual(seq, par) {
		t.Errorf("parallel aggregate differs from sequential:\nseq %+v\npar %+v", seq, par)
	}
}

// TestSweepParallelEquivalence pins the guarantee for the per-point
// fan-out, byte-for-byte: the JSON encoding of the crescendo from an
// 8-way sweep must equal the sequential one exactly.
func TestSweepParallelEquivalence(t *testing.T) {
	w := workloads.NewMemBench(20)
	seq, err := MustRunner(parallelTestConfig(1)).Sweep(w, dvs.Static{})
	if err != nil {
		t.Fatal(err)
	}
	par, err := MustRunner(parallelTestConfig(8)).Sweep(w, dvs.Static{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Errorf("parallel crescendo differs:\nseq %+v\npar %+v", seq, par)
	}
	seqJSON, err := json.Marshal(seq)
	if err != nil {
		t.Fatal(err)
	}
	parJSON, err := json.Marshal(par)
	if err != nil {
		t.Fatal(err)
	}
	if string(seqJSON) != string(parJSON) {
		t.Errorf("crescendo JSON differs:\nseq %s\npar %s", seqJSON, parJSON)
	}
}

// TestSweepParallelMultiRank runs a real multi-rank MPI workload (with
// daemons, staggered launches, and a per-node governor) through the
// parallel sweep to give the race detector something meaty.
func TestSweepParallelMultiRank(t *testing.T) {
	cfg := parallelTestConfig(4)
	cfg.Reps = 2
	cfg.UseTrueEnergy = true
	ft := workloads.NewFT('A', 4)
	ft.IterOverride = 1
	seq, err := MustRunner(func() Config { c := cfg; c.Parallelism = 1; return c }()).Sweep(ft, dvs.NewSlack())
	if err != nil {
		t.Fatal(err)
	}
	par, err := MustRunner(cfg).Sweep(ft, dvs.NewSlack())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Errorf("multi-rank parallel crescendo differs:\nseq %+v\npar %+v", seq, par)
	}
}

// TestParallelismValidation covers the new Config knob.
func TestParallelismValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Parallelism = -1
	if _, err := NewRunner(cfg); err == nil {
		t.Fatal("negative parallelism must be rejected")
	}
	cfg.Parallelism = 0 // GOMAXPROCS default
	if _, err := NewRunner(cfg); err != nil {
		t.Fatal(err)
	}
}

// TestRunOnceErrorStillReported ensures the fan-out preserves error
// reporting: an out-of-range base index fails the same way at any
// parallelism.
func TestRunErrorParallel(t *testing.T) {
	w := workloads.NewSwim(5)
	for _, par := range []int{1, 4} {
		cfg := parallelTestConfig(par)
		if _, err := MustRunner(cfg).Run(w, dvs.Static{}, 99); err == nil {
			t.Fatalf("parallelism %d: out-of-range base index must error", par)
		}
	}
}
