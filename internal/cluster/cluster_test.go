package cluster

import (
	"errors"
	"math"
	"testing"

	"repro/internal/dvfs"
	"repro/internal/dvs"
	"repro/internal/power"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// quickConfig is a fast apparatus for mechanics tests: short settle,
// one repetition.
func quickConfig() Config {
	cfg := DefaultConfig()
	cfg.Settle = 30 * sim.Second
	cfg.Reps = 1
	cfg.UseTrueEnergy = true
	return cfg
}

func TestRunOnceBasics(t *testing.T) {
	r := MustRunner(quickConfig())
	res, err := r.RunOnce(workloads.NewSwim(50), dvs.Static{}, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Delay <= 0 {
		t.Fatal("no delay")
	}
	if res.EnergyTrue <= 0 {
		t.Fatal("no energy")
	}
	if res.Workload != "swim" || res.Strategy != "static" || res.Label != "1.4GHz" {
		t.Fatalf("labels: %+v", res)
	}
	if res.Freq != 1400*dvfs.MHz {
		t.Fatalf("freq %v", res.Freq)
	}
	if len(res.Nodes) != 1 {
		t.Fatalf("%d node results", len(res.Nodes))
	}
	nr := res.Nodes[0]
	if nr.Busy+nr.Idle <= 0 {
		t.Fatal("no utilization recorded")
	}
	// Component energies sum to the node total.
	var sum power.Joules
	for _, c := range power.Components() {
		sum += nr.Component[c]
	}
	if math.Abs(float64(sum-nr.Energy)) > 1e-6 {
		t.Fatalf("component sum %v != %v", sum, nr.Energy)
	}
}

func TestRunOnceMeasuredVsTrueEnergy(t *testing.T) {
	// A long run makes the ACPI estimate converge on the truth, and the
	// Baytech cross-check agree — the paper's instrument redundancy.
	cfg := DefaultConfig()
	cfg.Reps = 1
	r := MustRunner(cfg)
	res, err := r.RunOnce(workloads.NewSwim(3000), dvs.Static{}, 0, 7)
	if err != nil {
		t.Fatal(err)
	}
	if res.Delay < sim.Duration(5*sim.Minute) {
		t.Fatalf("run too short for this test: %v", res.Delay)
	}
	relACPI := math.Abs(float64(res.EnergyACPI-res.EnergyTrue)) / float64(res.EnergyTrue)
	if relACPI > 0.05 {
		t.Fatalf("ACPI off by %.3f (acpi %v true %v)", relACPI, res.EnergyACPI, res.EnergyTrue)
	}
	relBay := math.Abs(float64(res.EnergyBaytech-res.EnergyTrue)) / float64(res.EnergyTrue)
	if relBay > 0.20 { // minute-aligned records truncate harder
		t.Fatalf("Baytech off by %.3f", relBay)
	}
}

func TestRunOnceStaticPinsFrequency(t *testing.T) {
	r := MustRunner(quickConfig())
	res, err := r.RunOnce(workloads.NewSwim(20), dvs.Static{}, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Label != "600MHz" {
		t.Fatalf("label %q", res.Label)
	}
	// The pin happens at install time, before the measurement window:
	// no transitions during the run itself.
	if res.Nodes[0].Transitions != 0 {
		t.Fatalf("%d transitions during static run", res.Nodes[0].Transitions)
	}
}

func TestRunOnceBadBaseIndex(t *testing.T) {
	r := MustRunner(quickConfig())
	if _, err := r.RunOnce(workloads.NewSwim(1), dvs.Static{}, 99, 1); err == nil {
		t.Fatal("expected error")
	}
}

func TestRunOnceTimeout(t *testing.T) {
	cfg := quickConfig()
	cfg.MaxSimTime = 40 * sim.Second // settle is 30s; workload won't fit
	r := MustRunner(cfg)
	_, err := r.RunOnce(workloads.NewSwim(2000), dvs.Static{}, 0, 1)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v", err)
	}
}

func TestRunRepetitionsAndDeterminism(t *testing.T) {
	cfg := quickConfig()
	cfg.Reps = 3
	r := MustRunner(cfg)
	a, err := r.Run(workloads.NewSwim(30), dvs.Static{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Runs) != 3 || a.Kept < 1 || a.Kept > 3 {
		t.Fatalf("runs=%d kept=%d", len(a.Runs), a.Kept)
	}
	// Same seed → identical aggregate.
	b, err := r.Run(workloads.NewSwim(30), dvs.Static{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if a.EnergyTrue != b.EnergyTrue || a.Delay != b.Delay {
		t.Fatalf("nondeterministic: %v/%v vs %v/%v", a.EnergyTrue, a.Delay, b.EnergyTrue, b.Delay)
	}
	// Different jitter seeds make repetitions differ (so the outlier
	// protocol is meaningful).
	if a.Runs[0].Delay == a.Runs[1].Delay && a.Runs[0].EnergyACPI == a.Runs[1].EnergyACPI {
		t.Fatal("repetitions identical; jitter not applied")
	}
}

func TestSweepShape(t *testing.T) {
	r := MustRunner(quickConfig())
	c, err := r.Sweep(workloads.NewMemBench(30), dvs.Static{})
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Points) != 5 {
		t.Fatalf("%d points", len(c.Points))
	}
	if c.Points[0].Freq != 1400*dvfs.MHz || c.Points[4].Freq != 600*dvfs.MHz {
		t.Fatal("sweep order")
	}
	if c.Workload != "membench" {
		t.Fatalf("workload %q", c.Workload)
	}
}

func TestDynamicStrategyReducesRegionFrequency(t *testing.T) {
	r := MustRunner(quickConfig())
	ft := workloads.NewFT('A', 4)
	ft.IterOverride = 1
	res, err := r.RunOnce(ft, dvs.NewDynamic(workloads.RegionFFT), 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Each rank transitions down and back once per iteration (plus the
	// initial pin to base which is a no-op at index 0).
	for i, nr := range res.Nodes {
		if nr.Transitions < 2 {
			t.Fatalf("node %d: %d transitions", i, nr.Transitions)
		}
	}
	// The region profile exists cluster-wide.
	found := false
	for _, p := range res.Profiles {
		if p.Region == workloads.RegionFFT && p.Count == 4 {
			found = true
		}
	}
	if !found {
		t.Fatalf("fft profile missing: %+v", res.Profiles)
	}
}

func TestCpuspeedRunLabel(t *testing.T) {
	r := MustRunner(quickConfig())
	pt, err := r.RunCpuspeed(workloads.NewSwim(20), dvs.NewCpuspeed())
	if err != nil {
		t.Fatal(err)
	}
	if pt.Label != "cpuspeed" {
		t.Fatalf("label %q", pt.Label)
	}
	if pt.Energy <= 0 || pt.Delay <= 0 {
		t.Fatalf("point %+v", pt)
	}
}

func TestBatteryProtocolReadings(t *testing.T) {
	// The measurement path must produce ACPI estimates on runs longer
	// than a few refresh periods.
	cfg := quickConfig()
	cfg.UseTrueEnergy = false
	cfg.Settle = sim.Minute
	r := MustRunner(cfg)
	res, err := r.RunOnce(workloads.NewSwim(800), dvs.Static{}, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.EnergyACPI <= 0 {
		t.Fatal("no ACPI estimate")
	}
	if res.Nodes[0].ACPI <= 0 {
		t.Fatal("no per-node ACPI estimate")
	}
}

func TestConfigValidate(t *testing.T) {
	good := quickConfig()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	breakers := []func(*Config){
		func(c *Config) { c.BatteryCapacityMWh = 0 },
		func(c *Config) { c.BatteryRefreshMin = 0 },
		func(c *Config) { c.BatteryRefreshMax = c.BatteryRefreshMin - 1 },
		func(c *Config) { c.BaytechInterval = 0 },
		func(c *Config) { c.Settle = -1 },
		func(c *Config) { c.StartStagger = -1 },
		func(c *Config) { c.MaxSimTime = c.Settle },
		func(c *Config) { c.OutlierK = -1 },
		func(c *Config) { c.TraceInterval = -1 },
		func(c *Config) {
			c.TraceInterval = 0
			c.TraceSinks = func(RunInfo) []trace.Sink { return nil }
		},
	}
	for i, brk := range breakers {
		cfg := quickConfig()
		brk(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("breaker %d: expected error", i)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustRunner must panic on invalid config")
		}
	}()
	bad := quickConfig()
	bad.BatteryCapacityMWh = -1
	MustRunner(bad)
}

func TestBatteryExhaustionFlag(t *testing.T) {
	cfg := quickConfig()
	cfg.BatteryCapacityMWh = 3 // ~11 J: dead in under a second
	r := MustRunner(cfg)
	res, err := r.RunOnce(workloads.NewSwim(50), dvs.Static{}, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !res.BatteryExhausted {
		t.Fatal("exhaustion not flagged")
	}
	// A healthy run is not flagged.
	res2, err := MustRunner(quickConfig()).RunOnce(workloads.NewSwim(50), dvs.Static{}, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res2.BatteryExhausted {
		t.Fatal("healthy run flagged")
	}
}
