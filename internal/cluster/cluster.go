// Package cluster assembles the full experimental apparatus of the
// paper — nodes, switch, MPI world, PowerPack profiler, ACPI batteries
// and the Baytech strip — and runs (workload × DVS strategy × operating
// point) experiments under the paper's measurement protocol: charge,
// settle on battery power, run, poll, repeat at least three times, and
// reject outliers.
package cluster

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/core"
	"repro/internal/dvfs"
	"repro/internal/dvs"
	"repro/internal/exec"
	"repro/internal/machine"
	"repro/internal/meter"
	"repro/internal/mpi"
	"repro/internal/netsim"
	"repro/internal/power"
	"repro/internal/powerpack"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// Config describes the cluster and the measurement protocol.
type Config struct {
	Machine machine.Params
	Net     netsim.Config
	MPI     mpi.Config

	// Fabric, when non-nil, builds the interconnect instead of the
	// default single switch from Net — e.g. an oversubscribed two-tier
	// netsim.Tree for topology studies.
	Fabric func(eng *sim.Engine, ports int) netsim.Fabric

	// BatteryCapacityMWh is the full-charge capacity per node.
	BatteryCapacityMWh float64
	// BatteryRefreshMin/Max bound the per-node ACPI refresh period;
	// the paper observes 15-20 s depending on the unit.
	BatteryRefreshMin, BatteryRefreshMax sim.Duration
	// BaytechInterval is the power strip's polling period.
	BaytechInterval sim.Duration
	// Settle is the on-battery discharge time before the workload
	// starts (the paper waits ~5 minutes for accurate measurements).
	Settle sim.Duration
	// StartStagger bounds the per-rank launch skew.
	StartStagger sim.Duration
	// MaxSimTime aborts a run that exceeds this much simulated time.
	MaxSimTime sim.Duration

	// Shards is the number of event-core shards one simulation is
	// partitioned across: ranks (and their switch ports) split
	// contiguously over per-shard engines that advance concurrently
	// inside conservative lookahead windows derived from Net.Latency.
	// Zero or one runs single-shard; results are byte-identical at any
	// setting. Orthogonal to Parallelism, which fans out independent
	// simulations: Shards parallelizes the inside of one big run.
	// Requires the default single-switch fabric (Fabric == nil).
	Shards int

	// Reps is how many times each experiment repeats (paper: ≥3).
	Reps int
	// Parallelism bounds how many independent simulation cells run
	// concurrently: repetitions inside Run, operating points inside
	// Sweep. Zero selects one worker per CPU (GOMAXPROCS); one forces
	// sequential execution. Every cell owns its engine and cluster and
	// seeds derive only from the cell index, so results are
	// bit-identical at any setting.
	Parallelism int
	// OutlierK is the MAD cutoff for outlier rejection.
	OutlierK float64
	// Seed feeds the per-repetition jitter (battery charge phase,
	// launch skew) that makes repetitions meaningfully different.
	Seed int64

	// TraceInterval, when positive, attaches a streaming power-trace
	// recorder sampling every node at this period. Incremental
	// statistics (mean/peak/energy per node) are always collected and
	// returned on each Result; nothing retains the raw samples.
	TraceInterval sim.Duration
	// TraceSinks, when set, is called once per simulation run to build
	// additional streaming consumers for that run's trace — e.g. a
	// binary archive via trace.NewFileWriter. It may be called
	// concurrently (repetitions and sweep points fan out across
	// workers), so the factory must be safe for concurrent use.
	// Requires a positive TraceInterval.
	TraceSinks func(RunInfo) []trace.Sink

	// UseTrueEnergy makes Sweep and RunCpuspeed report the exact
	// integrated energy instead of the ACPI battery estimate. The
	// paper-faithful protocol uses the battery (and long runs to
	// amortize its 15-20 s refresh); exact energy is for calibration
	// and for short diagnostic runs.
	UseTrueEnergy bool
}

// DefaultConfig returns the paper's apparatus.
func DefaultConfig() Config {
	return Config{
		Machine:            machine.DefaultParams(),
		Net:                netsim.Default100Mb(),
		MPI:                mpi.DefaultConfig(),
		BatteryCapacityMWh: meter.DefaultBatteryCapacityMWh,
		BatteryRefreshMin:  15 * sim.Second,
		BatteryRefreshMax:  20 * sim.Second,
		BaytechInterval:    sim.Minute,
		Settle:             5 * sim.Minute,
		StartStagger:       10 * sim.Millisecond,
		MaxSimTime:         12 * sim.Hour,
		Reps:               3,
		OutlierK:           3.5,
		Seed:               1,
	}
}

// NodeResult is the per-node outcome of one run.
type NodeResult struct {
	Energy      power.Joules // exact energy over the measured window
	ACPI        power.Joules // battery-protocol estimate (0 if unreadable)
	Transitions int
	Busy, Idle  sim.Duration
	StateTime   map[machine.State]sim.Duration
	Component   map[power.Component]power.Joules
}

// Result is the outcome of one experiment run.
type Result struct {
	Workload string
	Strategy string
	Label    string  // operating-point label, e.g. "800MHz" or "cpuspeed"
	Freq     dvfs.Hz // 0 for cpuspeed

	Delay         sim.Duration // time-to-solution (slowest rank)
	EnergyTrue    power.Joules // exact, all nodes
	EnergyACPI    power.Joules // battery estimate, all nodes
	EnergyBaytech power.Joules // power-strip estimate, all nodes

	Nodes    []NodeResult
	Profiles []powerpack.RegionProfile // cluster-merged, by region
	Events   []powerpack.Event
	// Trace holds the streamed per-node power statistics, non-nil when
	// the config set TraceInterval.
	Trace *trace.Stats
	// BatteryExhausted reports that at least one node's battery hit
	// zero during the run, invalidating its ACPI estimate (the paper's
	// protocol recharges fully between runs to avoid this).
	BatteryExhausted bool
}

// RunInfo identifies one simulation run to a TraceSinks factory — what
// is running and under which jitter seed — so the factory can route
// each run's trace to a distinct destination (file name, buffer).
type RunInfo struct {
	Workload string
	Strategy string
	Label    string // operating-point label, e.g. "800MHz" or "cpuspeed"
	Seed     int64
}

// Runner executes experiments on a fresh simulated cluster per run.
type Runner struct {
	cfg Config
}

// Validate reports the first problem with the configuration, or nil.
func (c Config) Validate() error {
	if err := c.Machine.Validate(); err != nil {
		return err
	}
	switch {
	case c.BatteryCapacityMWh <= 0:
		return errors.New("cluster: non-positive battery capacity")
	case c.BatteryRefreshMin <= 0 || c.BatteryRefreshMax < c.BatteryRefreshMin:
		return errors.New("cluster: invalid battery refresh range")
	case c.BaytechInterval <= 0:
		return errors.New("cluster: non-positive Baytech interval")
	case c.Settle < 0:
		return errors.New("cluster: negative settle time")
	case c.StartStagger < 0:
		return errors.New("cluster: negative start stagger")
	case c.MaxSimTime <= c.Settle:
		return errors.New("cluster: MaxSimTime must exceed the settle time")
	case c.OutlierK < 0:
		return errors.New("cluster: negative outlier cutoff")
	case c.Parallelism < 0:
		return errors.New("cluster: negative parallelism")
	case c.Shards < 0:
		return errors.New("cluster: negative shard count")
	case c.Shards > 1 && c.Fabric != nil:
		return errors.New("cluster: sharded runs require the default single-switch fabric")
	case c.Shards > 1 && c.Net.Latency <= 0:
		return errors.New("cluster: sharded runs need a positive network latency for lookahead")
	case c.TraceInterval < 0:
		return errors.New("cluster: negative trace interval")
	case c.TraceSinks != nil && c.TraceInterval <= 0:
		return errors.New("cluster: TraceSinks requires a positive TraceInterval")
	}
	return nil
}

// NewRunner returns a runner for the configuration, or an error if the
// configuration fails Validate.
func NewRunner(cfg Config) (*Runner, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Runner{cfg: cfg}, nil
}

// MustRunner is NewRunner for configurations known good at compile time
// (DefaultConfig and friends); it panics on an invalid configuration.
func MustRunner(cfg Config) *Runner {
	r, err := NewRunner(cfg)
	if err != nil {
		panic(err)
	}
	return r
}

// Config returns the runner's configuration.
func (r *Runner) Config() Config { return r.cfg }

// ErrTimeout reports a run that exceeded MaxSimTime.
var ErrTimeout = errors.New("cluster: run exceeded MaxSimTime")

// Coordinator-global priorities for same-time determinism (see
// sim.Group.ScheduleGlobal): every independent source of globals gets
// its own priority so ties on time still have a total, shard-count-
// invariant order. trace.GlobalPri and meter.GlobalPri take 1 and 2.
const (
	startSnapshotPri = 0
	// completionPriBase + rank spaces the per-rank completion checks;
	// two ranks finishing at the same instant schedule distinct keys.
	completionPriBase = 16
)

// RunOnce executes a single (workload, strategy, base operating point)
// run with the given jitter seed and returns its measurements.
//
// The simulation is partitioned across max(1, cfg.Shards) event-core
// shards: rank i (node and switch port alike) lives on shard
// i*K/nRanks, and the shards advance concurrently in conservative
// lookahead windows of Net.Latency. All cluster-wide observers — the
// start snapshot, completion detection, the Baytech strip and the
// trace recorder — run as coordinator globals at window barriers,
// where every shard's state is consistent. One shard runs the same
// windowed protocol inline, so results are byte-identical at any
// shard count.
func (r *Runner) RunOnce(w workloads.Workload, strat dvs.Strategy, baseIdx int, seed int64) (*Result, error) {
	cfg := r.cfg
	table := cfg.Machine.Table
	if baseIdx < 0 || baseIdx >= table.Len() {
		return nil, fmt.Errorf("cluster: base operating point %d out of range", baseIdx)
	}
	nRanks := w.Ranks()
	rng := rand.New(rand.NewSource(seed))

	shards := cfg.Shards
	if shards < 1 {
		shards = 1
	}
	if shards > nRanks {
		shards = nRanks
	}
	look := cfg.Net.Latency
	if look <= 0 {
		// Single shard only (Validate enforces it): the lookahead just
		// paces windows, so any positive value is correct.
		look = sim.Microsecond
	}
	g := sim.NewGroup(shards, look)
	defer g.Close()

	nodes := make([]*machine.Node, nRanks)
	for i := range nodes {
		nodes[i] = machine.NewNode(g.Engine(i*shards/nRanks), i, cfg.Machine)
	}
	var fab netsim.Fabric
	if cfg.Fabric != nil {
		fab = cfg.Fabric(g.Engine(0), nRanks)
	} else {
		fab = netsim.New(g.Engine(0), nRanks, cfg.Net)
	}
	world := mpi.NewWorldOn(g, nodes, fab, cfg.MPI)
	prof := powerpack.NewProfiler()

	// Completion tracking shared with daemons and meters. Each rank
	// fills only its own slot (shard-safe); done flips on the
	// coordinator goroutine at a window barrier.
	finished := make([]bool, nRanks)
	finishAt := make([]sim.Time, nRanks)
	done := false
	var endAt sim.Time

	policy := strat.Install(dvs.InstallCtx{
		Eng:     g.Engine(0),
		Nodes:   nodes,
		BaseIdx: baseIdx,
		Done:    func() bool { return done },
	})
	ppctxs := make([]*powerpack.NodeCtx, nRanks)
	for i, n := range nodes {
		ppctxs[i] = powerpack.NewNodeCtx(n, prof, policy)
	}

	// Measurement protocol: full charge (with a fraction of a mWh of
	// per-node phase jitter), disconnect, settle, then run.
	batteries := make([]*meter.ACPIBattery, nRanks)
	refreshSpan := cfg.BatteryRefreshMax - cfg.BatteryRefreshMin
	for i, n := range nodes {
		capacity := cfg.BatteryCapacityMWh - rng.Float64()
		refresh := cfg.BatteryRefreshMin
		if refreshSpan > 0 {
			refresh += sim.Duration(rng.Int63n(int64(refreshSpan)))
		}
		batteries[i] = meter.NewACPIBattery(n, capacity, refresh)
		// Per-node instrument: polls only its own node, so it lives on
		// the node's shard.
		batteries[i].Spawn(n.Engine(), func() bool { return done })
	}
	// Cluster-wide instruments read every node, so they sample at
	// window barriers via coordinator globals.
	strip := meter.NewBaytechStrip(nodes, cfg.BaytechInterval)
	strip.SpawnGroup(g, func() bool { return done })

	label := table.At(baseIdx).Freq.String()
	freq := table.At(baseIdx).Freq
	if strat.Name() == "cpuspeed" {
		label = "cpuspeed"
		freq = 0
	}
	var rec *trace.Recorder
	var traceStats *trace.Stats
	if cfg.TraceInterval > 0 {
		traceStats = trace.NewStats()
		sinks := []trace.Sink{traceStats}
		if cfg.TraceSinks != nil {
			sinks = append(sinks, cfg.TraceSinks(RunInfo{
				Workload: w.Name(),
				Strategy: strat.Name(),
				Label:    label,
				Seed:     seed,
			})...)
		}
		var err error
		rec, err = trace.New(trace.Config{Interval: cfg.TraceInterval, Nodes: nodes, Sinks: sinks})
		if err != nil {
			return nil, fmt.Errorf("cluster: %s/%s@%s: %w", w.Name(), strat.Name(), label, err)
		}
		rec.SpawnGroup(g, func() bool { return done })
	}
	// closeTrace flushes the trace pipeline; on error paths the close
	// error rides along with the primary one.
	closeTrace := func(err error) error {
		if rec == nil {
			return err
		}
		cerr := rec.Close()
		if cerr == nil {
			return err
		}
		if err == nil {
			return fmt.Errorf("cluster: %s/%s@%s: trace: %w", w.Name(), strat.Name(), label, cerr)
		}
		return fmt.Errorf("%w (also trace: %v)", err, cerr)
	}

	// Energy snapshot at the measurement window's start.
	startAt := sim.Time(cfg.Settle)
	startEnergy := make([]power.Joules, nRanks)
	startComp := make([]map[power.Component]power.Joules, nRanks)
	startBusy := make([]sim.Duration, nRanks)
	startIdle := make([]sim.Duration, nRanks)
	startState := make([]map[machine.State]sim.Duration, nRanks)
	startTrans := make([]int, nRanks)
	g.ScheduleGlobal(startAt, startSnapshotPri, func() {
		for i, n := range nodes {
			startEnergy[i] = n.EnergyAt(startAt)
			m := make(map[power.Component]power.Joules)
			for _, c := range power.Components() {
				m[c] = n.ComponentEnergyAt(c, startAt)
			}
			startComp[i] = m
			startBusy[i], startIdle[i] = n.Utilization()
			st := make(map[machine.State]sim.Duration)
			for _, s := range machine.States() {
				st[s] = n.StateTime(s)
			}
			startState[i] = st
			startTrans[i] = n.Transitions()
		}
	})

	endEnergy := make([]power.Joules, nRanks)
	endComp := make([]map[power.Component]power.Joules, nRanks)
	endBusy := make([]sim.Duration, nRanks)
	endIdle := make([]sim.Duration, nRanks)
	endState := make([]map[machine.State]sim.Duration, nRanks)
	endTrans := make([]int, nRanks)
	// complete is the idempotent completion check: each finishing rank
	// schedules it one lookahead after its own finish (the earliest
	// coordinator slot its slot-write is guaranteed visible at). The
	// first check that sees every rank finished snapshots the cluster.
	// All reads back-date to endAt even though the check runs up to one
	// lookahead later, so the measured window is exactly
	// [startAt, endAt] no matter the shard count.
	complete := func() {
		if done {
			return
		}
		for _, f := range finished {
			if !f {
				return
			}
		}
		endAt = finishAt[0]
		for _, t := range finishAt[1:] {
			if t > endAt {
				endAt = t
			}
		}
		for j, n := range nodes {
			endEnergy[j] = n.EnergyAt(endAt)
			m := make(map[power.Component]power.Joules)
			for _, c := range power.Components() {
				m[c] = n.ComponentEnergyAt(c, endAt)
			}
			endComp[j] = m
			endBusy[j], endIdle[j] = n.UtilizationAt(endAt)
			st := make(map[machine.State]sim.Duration)
			for _, s := range machine.States() {
				st[s] = n.StateTimeAt(s, endAt)
			}
			endState[j] = st
			endTrans[j] = n.TransitionsAt(endAt)
		}
		done = true
	}
	for i := 0; i < nRanks; i++ {
		i := i
		launch := startAt
		if cfg.StartStagger > 0 {
			launch = launch.Add(sim.Duration(rng.Int63n(int64(cfg.StartStagger))))
		}
		nodes[i].Engine().SpawnAt(launch, fmt.Sprintf("app.rank%d", i), func(p *sim.Proc) {
			w.Run(workloads.Ctx{P: p, Rank: world.Rank(i), Node: nodes[i], PP: ppctxs[i]})
			finishAt[i] = p.Now()
			finished[i] = true
			g.ScheduleGlobal(p.Now().Add(g.Lookahead()), completionPriBase+uint64(i), complete)
		})
	}

	if _, err := g.Run(sim.Time(cfg.MaxSimTime)); err != nil {
		return nil, closeTrace(fmt.Errorf("cluster: %s/%s@%s: %w", w.Name(), strat.Name(), table.At(baseIdx).Freq, err))
	}
	if !done {
		return nil, closeTrace(fmt.Errorf("%w: %s/%s", ErrTimeout, w.Name(), strat.Name()))
	}
	if err := closeTrace(nil); err != nil {
		return nil, err
	}

	res := &Result{
		Workload: w.Name(),
		Strategy: strat.Name(),
		Label:    label,
		Freq:     freq,
		Delay:    endAt.Sub(startAt),
		Events:   prof.Events(),
		Trace:    traceStats,
	}

	regions := map[string]bool{}
	for i := range nodes {
		nr := NodeResult{
			Energy:      endEnergy[i] - startEnergy[i],
			Transitions: endTrans[i] - startTrans[i],
			StateTime:   make(map[machine.State]sim.Duration),
			Component:   make(map[power.Component]power.Joules),
		}
		nr.Busy = endBusy[i] - startBusy[i]
		nr.Idle = endIdle[i] - startIdle[i]
		for _, s := range machine.States() {
			nr.StateTime[s] = endState[i][s] - startState[i][s]
		}
		for _, c := range power.Components() {
			nr.Component[c] = endComp[i][c] - startComp[i][c]
		}
		if batteries[i].Exhausted() {
			res.BatteryExhausted = true
		}
		if est, ok := batteries[i].EnergyBetween(startAt, endAt); ok {
			nr.ACPI = est
			res.EnergyACPI += est
		}
		if est, ok := strip.EnergyBetween(i, startAt, endAt); ok {
			res.EnergyBaytech += est
		}
		res.EnergyTrue += nr.Energy
		res.Nodes = append(res.Nodes, nr)
		for _, rp := range ppctxs[i].Profiles() {
			regions[rp.Region] = true
		}
	}
	// Merge in sorted region order: collecting the keys and sorting
	// them before emission keeps Profiles a pure function of
	// (config, seed) despite Go's randomized map iteration.
	names := make([]string, 0, len(regions))
	for region := range regions {
		names = append(names, region)
	}
	sort.Strings(names)
	for _, region := range names {
		res.Profiles = append(res.Profiles, powerpack.MergeProfiles(ppctxs, region))
	}
	return res, nil
}

// Aggregate is the repeated-run summary of one experiment point.
type Aggregate struct {
	Runs []*Result // every repetition, in order

	// Kept is how many repetitions survived outlier rejection.
	Kept int
	// Delay and the energies are means over the kept repetitions.
	Delay         sim.Duration
	EnergyTrue    power.Joules
	EnergyACPI    power.Joules
	EnergyBaytech power.Joules
}

// Run repeats the experiment cfg.Reps times with different jitter
// seeds, rejects outliers on the measured (ACPI) energy, and averages.
// Repetitions are independent simulations, so they fan out across up
// to cfg.Parallelism workers; each repetition's seed depends only on
// its index and results merge in repetition order, keeping the
// aggregate bit-identical to a sequential run.
func (r *Runner) Run(w workloads.Workload, strat dvs.Strategy, baseIdx int) (*Aggregate, error) {
	reps := r.cfg.Reps
	if reps < 1 {
		reps = 1
	}
	runs, err := exec.Map(r.cfg.Parallelism, reps, func(rep int) (*Result, error) {
		return r.RunOnce(w, strat, baseIdx, r.cfg.Seed+int64(rep)*7919)
	})
	if err != nil {
		return nil, err
	}
	agg := &Aggregate{Runs: runs}
	acpis := make([]float64, len(runs))
	for i, res := range runs {
		acpis[i] = float64(res.EnergyACPI)
	}
	kept := stats.RejectOutliers(acpis, r.cfg.OutlierK)
	keptSet := map[float64]int{}
	for _, v := range kept {
		keptSet[v]++
	}
	var dSum sim.Duration
	var eTrue, eACPI, eBay power.Joules
	n := 0
	for _, res := range agg.Runs {
		if keptSet[float64(res.EnergyACPI)] == 0 {
			continue
		}
		keptSet[float64(res.EnergyACPI)]--
		n++
		dSum += res.Delay
		eTrue += res.EnergyTrue
		eACPI += res.EnergyACPI
		eBay += res.EnergyBaytech
	}
	if n == 0 { // cannot happen (RejectOutliers keeps ≥1), but be safe
		return nil, errors.New("cluster: all repetitions rejected")
	}
	agg.Kept = n
	agg.Delay = dSum / sim.Duration(n)
	agg.EnergyTrue = eTrue / power.Joules(n)
	agg.EnergyACPI = eACPI / power.Joules(n)
	agg.EnergyBaytech = eBay / power.Joules(n)
	return agg, nil
}

// reportedEnergy selects the energy source Sweep reports.
func (r *Runner) reportedEnergy(agg *Aggregate) power.Joules {
	if r.cfg.UseTrueEnergy {
		return agg.EnergyTrue
	}
	return agg.EnergyACPI
}

// Sweep runs the strategy at every operating point and returns the
// energy-delay crescendo (measured energies, exact delays), highest
// frequency first. Operating points fan out across up to
// cfg.Parallelism workers; the crescendo is assembled in table order,
// so it is bit-identical to a sequential sweep.
func (r *Runner) Sweep(w workloads.Workload, strat dvs.Strategy) (core.Crescendo, error) {
	table := r.cfg.Machine.Table
	points, err := exec.Map(r.cfg.Parallelism, table.Len(), func(i int) (core.Point, error) {
		agg, err := r.Run(w, strat, i)
		if err != nil {
			return core.Point{}, err
		}
		return core.Point{
			Label:  fmt.Sprintf("%s@%s", strat.Name(), table.At(i).Freq),
			Freq:   table.At(i).Freq,
			Energy: float64(r.reportedEnergy(agg)),
			Delay:  agg.Delay.Seconds(),
		}, nil
	})
	if err != nil {
		return core.Crescendo{}, err
	}
	return core.Crescendo{Workload: w.Name(), Points: points}, nil
}

// RunCpuspeed runs the cpuspeed strategy (whose base point is the boot
// default, the highest frequency) and returns its single point.
func (r *Runner) RunCpuspeed(w workloads.Workload, daemon *dvs.Cpuspeed) (core.Point, error) {
	agg, err := r.Run(w, daemon, 0)
	if err != nil {
		return core.Point{}, err
	}
	return core.Point{
		Label:  "cpuspeed",
		Energy: float64(r.reportedEnergy(agg)),
		Delay:  agg.Delay.Seconds(),
	}, nil
}
