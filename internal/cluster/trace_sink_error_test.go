package cluster

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/dvs"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// failEndSink accepts the whole protocol but fails at End — the shape
// of a file sink whose final flush hits a full disk. Embedding a real
// Stats keeps Begin/Tick semantics honest.
type failEndSink struct {
	inner *trace.Stats
	err   error
}

func (s *failEndSink) Begin(m trace.Meta) error                 { return s.inner.Begin(m) }
func (s *failEndSink) Tick(at sim.Time, r []trace.Sample) error { return s.inner.Tick(at, r) }
func (s *failEndSink) End() error {
	if err := s.inner.End(); err != nil {
		return err
	}
	return s.err
}

// TestTraceSinkEndErrorSurfaces pins the closeTrace error-combining
// path: a TraceSinks factory whose sink errors in End must fail
// RunOnce even though the simulation itself succeeded — a trace
// pipeline that could not flush is a run whose measurements cannot be
// trusted on disk.
func TestTraceSinkEndErrorSurfaces(t *testing.T) {
	sentinel := errors.New("flush failed: device out of space")
	cfg := DefaultConfig()
	cfg.Reps = 1
	cfg.TraceInterval = 250 * sim.Millisecond
	cfg.TraceSinks = func(RunInfo) []trace.Sink {
		return []trace.Sink{&failEndSink{inner: trace.NewStats(), err: sentinel}}
	}

	ft := workloads.NewFT('A', 4)
	_, err := MustRunner(cfg).RunOnce(ft, dvs.Static{}, 2, 1)
	if err == nil {
		t.Fatal("RunOnce succeeded although the trace sink failed in End")
	}
	if !errors.Is(err, sentinel) {
		t.Fatalf("RunOnce error %v does not wrap the sink's End error", err)
	}
	if !strings.Contains(err.Error(), "trace") {
		t.Errorf("error %q does not identify the trace pipeline", err)
	}
}
