package cluster

// Cross-stack fuzzing: random-but-deterministic synthetic workloads
// driven through the full apparatus (cost model, MPI runtime, DVS
// strategies, power accounting, battery protocol), with the invariants
// every run must satisfy regardless of program shape.

import (
	"math"
	"testing"

	"repro/internal/dvs"
	"repro/internal/power"
	"repro/internal/sim"
	"repro/internal/workloads"
)

func TestFuzzSyntheticWorkloads(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Settle = 10 * sim.Second
	cfg.Reps = 1
	cfg.UseTrueEnergy = true
	r := MustRunner(cfg)

	for seed := int64(1); seed <= 12; seed++ {
		procs := int(seed%4) + 1 // 1..4 ranks
		w := workloads.NewSynthetic(seed, procs, 12, 2)

		top, err := r.RunOnce(w, dvs.Static{}, 0, seed)
		if err != nil {
			t.Fatalf("seed %d top: %v", seed, err)
		}
		low, err := r.RunOnce(w, dvs.Static{}, 4, seed)
		if err != nil {
			t.Fatalf("seed %d low: %v", seed, err)
		}

		// Invariant: positive energy and delay everywhere.
		if top.EnergyTrue <= 0 || top.Delay <= 0 {
			t.Fatalf("seed %d: non-positive results %+v", seed, top)
		}
		// Invariant: 600 MHz is never faster.
		if low.Delay < top.Delay {
			t.Fatalf("seed %d: 600MHz faster (%v < %v)", seed, low.Delay, top.Delay)
		}
		// Invariant: 600 MHz never uses more energy than 1.4 GHz on
		// these mixes (all phases have nonincreasing power and at most
		// 2.35x slowdown; base power never dominates that hard).
		ratio := float64(low.EnergyTrue) / float64(top.EnergyTrue)
		if ratio > 1.05 {
			t.Fatalf("seed %d: energy ratio %.3f at 600MHz", seed, ratio)
		}
		for i, nr := range top.Nodes {
			// Invariant: utilization covers the window exactly.
			if got := nr.Busy + nr.Idle; got != top.Delay {
				t.Fatalf("seed %d node %d: busy+idle %v != delay %v", seed, i, got, top.Delay)
			}
			// Invariant: component energies sum to the node total.
			var sum power.Joules
			for _, c := range power.Components() {
				sum += nr.Component[c]
			}
			if math.Abs(float64(sum-nr.Energy)) > 1e-6 {
				t.Fatalf("seed %d node %d: component sum mismatch", seed, i)
			}
		}

		// Invariant: reruns are bit-identical.
		again, err := r.RunOnce(w, dvs.Static{}, 0, seed)
		if err != nil {
			t.Fatalf("seed %d rerun: %v", seed, err)
		}
		if again.EnergyTrue != top.EnergyTrue || again.Delay != top.Delay {
			t.Fatalf("seed %d: nondeterministic rerun", seed)
		}
	}
}

func TestFuzzSyntheticUnderEveryStrategy(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Settle = 10 * sim.Second
	cfg.Reps = 1
	cfg.UseTrueEnergy = true
	r := MustRunner(cfg)

	strategies := []dvs.Strategy{
		dvs.Static{},
		dvs.NewDynamic(), // acts on the "synth" regions
		dvs.NewCpuspeed(),
		dvs.NewAdaptive(),
	}
	for seed := int64(20); seed < 24; seed++ {
		w := workloads.NewSynthetic(seed, 3, 10, 2)
		for _, strat := range strategies {
			res, err := r.RunOnce(w, strat, 0, seed)
			if err != nil {
				t.Fatalf("seed %d %s: %v", seed, strat.Name(), err)
			}
			if res.EnergyTrue <= 0 || res.Delay <= 0 {
				t.Fatalf("seed %d %s: degenerate result", seed, strat.Name())
			}
		}
	}
}
