package cluster

import (
	"bytes"
	"encoding/json"
	"reflect"
	"sync"
	"testing"

	"repro/internal/dvs"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// traceCapture collects each run's binary trace archive in memory,
// keyed by jitter seed. The factory may be called from concurrent
// exec.Map workers, so the map is mutex-guarded.
type traceCapture struct {
	mu   sync.Mutex
	bufs map[int64]*bytes.Buffer
}

func newTraceCapture() *traceCapture {
	return &traceCapture{bufs: map[int64]*bytes.Buffer{}}
}

func (tc *traceCapture) sinks(info RunInfo) []trace.Sink {
	buf := &bytes.Buffer{}
	tc.mu.Lock()
	tc.bufs[info.Seed] = buf
	tc.mu.Unlock()
	return []trace.Sink{trace.NewWriter(buf)}
}

// shardTestConfig returns a full-apparatus config (battery protocol,
// Baytech strip, power trace with a binary archive sink) at the given
// shard count, so the equality tests cover every measurement path that
// runs on the group coordinator, not just the event core.
func shardTestConfig(shards int, tc *traceCapture) Config {
	cfg := DefaultConfig()
	cfg.Settle = 30 * sim.Second
	cfg.Reps = 2
	cfg.Parallelism = 1
	cfg.Shards = shards
	cfg.TraceInterval = 250 * sim.Millisecond
	if tc != nil {
		cfg.TraceSinks = tc.sinks
	}
	return cfg
}

// TestShardedRunByteEquality pins the tentpole guarantee at the cluster
// layer: a sharded run of a real multi-rank MPI workload — daemons,
// staggered launches, governor, batteries, Baytech strip, power trace —
// is byte-identical to the sequential (1-shard) run at every shard
// count, including shard counts that do not divide the rank count. The
// streamed trace stats ride along in the aggregate comparison (they
// hold no engine pointers), and the binary trace archives are compared
// byte for byte.
func TestShardedRunByteEquality(t *testing.T) {
	ft := workloads.NewFT('A', 4)
	ft.IterOverride = 1
	seqTC := newTraceCapture()
	seq, err := MustRunner(shardTestConfig(1, seqTC)).Run(ft, dvs.NewSlack(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(seqTC.bufs) != 2 {
		t.Fatalf("%d trace archives for 2 reps", len(seqTC.bufs))
	}
	seqJSON, err := json.Marshal(seq)
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{2, 3, 4} {
		shrTC := newTraceCapture()
		shr, err := MustRunner(shardTestConfig(shards, shrTC)).Run(ft, dvs.NewSlack(), 2)
		if err != nil {
			t.Fatal(err)
		}
		for seed, want := range seqTC.bufs {
			got, ok := shrTC.bufs[seed]
			if !ok {
				t.Errorf("%d shards: no trace archive for seed %d", shards, seed)
				continue
			}
			if !bytes.Equal(got.Bytes(), want.Bytes()) {
				t.Errorf("%d shards: binary trace archive for seed %d differs from 1 shard", shards, seed)
			}
		}
		if !reflect.DeepEqual(shr, seq) {
			t.Errorf("%d shards: aggregate differs from 1 shard:\nseq %+v\nshr %+v", shards, seq, shr)
		}
		shrJSON, err := json.Marshal(shr)
		if err != nil {
			t.Fatal(err)
		}
		if string(shrJSON) != string(seqJSON) {
			t.Errorf("%d shards: aggregate JSON differs from 1 shard", shards)
		}
	}
}

// TestShardedSweepStrategies runs the operating-point sweep under the
// dynamic and adaptive strategies (region-driven DVS transitions, whose
// per-node policy state is the part that had to become shard-local)
// across shard counts.
func TestShardedSweepStrategies(t *testing.T) {
	ft := workloads.NewFT('A', 4)
	ft.IterOverride = 1
	for _, strat := range []dvs.Strategy{dvs.NewDynamic(), dvs.NewAdaptive()} {
		cfg := shardTestConfig(1, nil)
		cfg.Reps = 1
		cfg.TraceInterval = 0
		cfg.UseTrueEnergy = true
		seq, err := MustRunner(cfg).Sweep(ft, strat)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Shards = 4
		shr, err := MustRunner(cfg).Sweep(ft, strat)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(shr, seq) {
			t.Errorf("%s: sharded sweep differs from sequential", strat.Name())
		}
	}
}

// TestShardedValidation covers the Shards knob's constraints.
func TestShardedValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Shards = -1
	if _, err := NewRunner(cfg); err == nil {
		t.Fatal("negative shards must be rejected")
	}
	cfg.Shards = 2
	cfg.Fabric = func(eng *sim.Engine, ports int) netsim.Fabric {
		return netsim.NewTree(eng, ports, netsim.TreeConfig{
			Host:                       netsim.Default100Mb(),
			PortsPerEdge:               2,
			UplinkBandwidthBytesPerSec: 100e6 / 8,
			CoreLatency:                20 * sim.Microsecond,
		})
	}
	if _, err := NewRunner(cfg); err == nil {
		t.Fatal("sharded runs with a custom fabric must be rejected")
	}
}
