package cluster

import (
	"encoding/json"
	"reflect"
	"testing"

	"repro/internal/dvs"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// shardTestConfig returns a full-apparatus config (battery protocol,
// Baytech strip, power trace) at the given shard count, so the
// equality tests cover every measurement path that runs on the group
// coordinator, not just the event core.
func shardTestConfig(shards int) Config {
	cfg := DefaultConfig()
	cfg.Settle = 30 * sim.Second
	cfg.Reps = 2
	cfg.Parallelism = 1
	cfg.Shards = shards
	cfg.TraceInterval = 250 * sim.Millisecond
	return cfg
}

// stripTraces detaches the trace recorders from an aggregate (they hold
// node/engine pointers that differ between runs) and returns their
// samples for value comparison.
func stripTraces(agg *Aggregate) [][]trace.Sample {
	var samples [][]trace.Sample
	for i := range agg.Runs {
		if agg.Runs[i].Trace != nil {
			samples = append(samples, agg.Runs[i].Trace.Samples())
			agg.Runs[i].Trace = nil
		}
	}
	return samples
}

// TestShardedRunByteEquality pins the tentpole guarantee at the cluster
// layer: a sharded run of a real multi-rank MPI workload — daemons,
// staggered launches, governor, batteries, Baytech strip, power trace —
// is byte-identical to the sequential (1-shard) run at every shard
// count, including shard counts that do not divide the rank count.
func TestShardedRunByteEquality(t *testing.T) {
	ft := workloads.NewFT('A', 4)
	ft.IterOverride = 1
	seq, err := MustRunner(shardTestConfig(1)).Run(ft, dvs.NewSlack(), 2)
	if err != nil {
		t.Fatal(err)
	}
	seqSamples := stripTraces(seq)
	seqJSON, err := json.Marshal(seq)
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{2, 3, 4} {
		shr, err := MustRunner(shardTestConfig(shards)).Run(ft, dvs.NewSlack(), 2)
		if err != nil {
			t.Fatal(err)
		}
		shrSamples := stripTraces(shr)
		if !reflect.DeepEqual(shrSamples, seqSamples) {
			t.Errorf("%d shards: power-trace samples differ from 1 shard", shards)
		}
		if !reflect.DeepEqual(shr, seq) {
			t.Errorf("%d shards: aggregate differs from 1 shard:\nseq %+v\nshr %+v", shards, seq, shr)
		}
		shrJSON, err := json.Marshal(shr)
		if err != nil {
			t.Fatal(err)
		}
		if string(shrJSON) != string(seqJSON) {
			t.Errorf("%d shards: aggregate JSON differs from 1 shard", shards)
		}
	}
}

// TestShardedSweepStrategies runs the operating-point sweep under the
// dynamic and adaptive strategies (region-driven DVS transitions, whose
// per-node policy state is the part that had to become shard-local)
// across shard counts.
func TestShardedSweepStrategies(t *testing.T) {
	ft := workloads.NewFT('A', 4)
	ft.IterOverride = 1
	for _, strat := range []dvs.Strategy{dvs.NewDynamic(), dvs.NewAdaptive()} {
		cfg := shardTestConfig(1)
		cfg.Reps = 1
		cfg.TraceInterval = 0
		cfg.UseTrueEnergy = true
		seq, err := MustRunner(cfg).Sweep(ft, strat)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Shards = 4
		shr, err := MustRunner(cfg).Sweep(ft, strat)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(shr, seq) {
			t.Errorf("%s: sharded sweep differs from sequential", strat.Name())
		}
	}
}

// TestShardedValidation covers the Shards knob's constraints.
func TestShardedValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Shards = -1
	if _, err := NewRunner(cfg); err == nil {
		t.Fatal("negative shards must be rejected")
	}
	cfg.Shards = 2
	cfg.Fabric = func(eng *sim.Engine, ports int) netsim.Fabric {
		return netsim.NewTree(eng, ports, netsim.TreeConfig{
			Host:                       netsim.Default100Mb(),
			PortsPerEdge:               2,
			UplinkBandwidthBytesPerSec: 100e6 / 8,
			CoreLatency:                20 * sim.Microsecond,
		})
	}
	if _, err := NewRunner(cfg); err == nil {
		t.Fatal("sharded runs with a custom fabric must be rejected")
	}
}
