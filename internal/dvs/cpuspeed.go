package dvs

import (
	"fmt"

	"repro/internal/machine"
	"repro/internal/powerpack"
	"repro/internal/sim"
)

// Cpuspeed models the Fedora Core 2 cpuspeed daemon: each node runs an
// independent instance that samples CPU utilization from /proc/stat on
// a fixed interval, jumps to the maximum frequency as soon as the CPU
// looks busy, and steps down one operating point at a time while it
// looks idle.
//
// Because MPICH busy-polls, MPI wait time is indistinguishable from
// work in /proc/stat, so — as the paper observes — the daemon mostly
// parks scientific codes at the top frequency and conserves little.
type Cpuspeed struct {
	// Interval is the sampling period (the daemon's -i option).
	Interval sim.Duration
	// RaiseBusy is the busy fraction at or above which the daemon
	// jumps straight to the highest operating point.
	RaiseBusy float64
	// LowerBusy is the busy fraction at or below which the daemon
	// steps down one operating point.
	LowerBusy float64
}

// NewCpuspeed returns the daemon with its stock configuration: 1 s
// interval, raise on >75% busy, lower on <25% busy.
func NewCpuspeed() *Cpuspeed {
	return &Cpuspeed{
		Interval:  sim.Second,
		RaiseBusy: 0.75,
		LowerBusy: 0.25,
	}
}

// Name implements Strategy.
func (*Cpuspeed) Name() string { return "cpuspeed" }

// Install implements Strategy: it spawns one daemon process per node.
// The BaseIdx is ignored — the daemon owns the frequency — except that
// nodes start at the highest point, as after boot.
func (c *Cpuspeed) Install(ctx InstallCtx) powerpack.RegionPolicy {
	if c.Interval <= 0 {
		panic("dvs: Cpuspeed with non-positive interval") //lint:allow panicfree (Install misuse is a programming error caught at startup)
	}
	for _, n := range ctx.Nodes {
		n := n
		// Spawn on the node's own engine so the daemon lives on the
		// node's event-core shard in sharded runs.
		n.Engine().Spawn(fmt.Sprintf("cpuspeed%d", n.ID()), func(p *sim.Proc) {
			c.daemon(p, n, ctx.Done)
		})
	}
	return nil
}

// daemon is one node's governor loop.
func (c *Cpuspeed) daemon(p *sim.Proc, n *machine.Node, done func() bool) {
	prevBusy, prevIdle := n.Utilization()
	for {
		p.Sleep(c.Interval)
		if done != nil && done() {
			return
		}
		busy, idle := n.Utilization()
		db, di := busy-prevBusy, idle-prevIdle
		prevBusy, prevIdle = busy, idle
		total := db + di
		if total <= 0 {
			continue
		}
		util := float64(db) / float64(total)
		table := n.Params().Table
		switch {
		case util >= c.RaiseBusy:
			if n.OPIndex() != 0 {
				mustSetOP(p, n, 0)
			}
		case util <= c.LowerBusy:
			if next := table.StepDown(n.OPIndex()); next != n.OPIndex() {
				mustSetOP(p, n, next)
			}
		}
	}
}
