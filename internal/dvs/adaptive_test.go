package dvs

import (
	"testing"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/powerpack"
	"repro/internal/sim"
)

// runAdaptive executes visits of a synthetic region under the adaptive
// governor and returns the policy for inspection.
func runAdaptive(t *testing.T, visits int, body func(p *sim.Proc, n *machine.Node)) (*adaptivePolicy, *machine.Node) {
	t.Helper()
	e := sim.NewEngine()
	n := machine.NewNode(e, 0, machine.DefaultParams())
	a := NewAdaptive()
	pol := a.Install(InstallCtx{Eng: e, Nodes: []*machine.Node{n}, BaseIdx: 0}).(*adaptivePolicy)
	ctx := powerpack.NewNodeCtx(n, powerpack.NewProfiler(), pol)
	e.Spawn("app", func(p *sim.Proc) {
		p.Sleep(sim.Millisecond)
		for i := 0; i < visits; i++ {
			ctx.EnterRegion(p, "r")
			body(p, n)
			ctx.ExitRegion(p, "r")
			n.IdleFor(p, 10*sim.Millisecond)
		}
	})
	if _, err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	return pol, n
}

func TestAdaptiveConvergesOnMemoryBoundRegion(t *testing.T) {
	// A memory-bound region has its weighted-ED2P optimum at a low
	// frequency; after probing all five points the governor must have
	// converged there.
	pol, n := runAdaptive(t, 8, func(p *sim.Proc, n *machine.Node) {
		n.MemoryRounds(p, 2_000_000)
	})
	got := pol.Chosen(0, "r")
	if got < 3 { // 800MHz or 600MHz
		t.Fatalf("converged on index %d, want a low operating point", got)
	}
	// After convergence the node returns to base outside the region.
	if n.OPIndex() != 0 {
		t.Fatalf("node left at index %d", n.OPIndex())
	}
}

func TestAdaptiveConvergesOnComputeBoundRegion(t *testing.T) {
	pol, _ := runAdaptive(t, 8, func(p *sim.Proc, n *machine.Node) {
		n.Compute(p, 3e7)
	})
	got := pol.Chosen(0, "r")
	if got != 0 && got != 1 {
		t.Fatalf("compute-bound region converged on index %d, want a fast point", got)
	}
}

func TestAdaptiveSkipsTinyRegions(t *testing.T) {
	pol, n := runAdaptive(t, 8, func(p *sim.Proc, n *machine.Node) {
		n.Compute(p, 1000) // sub-microsecond: not worth a transition
	})
	if got := pol.Chosen(0, "r"); got != -1 {
		t.Fatalf("tiny region should be skipped, got %d", got)
	}
	// A skipped region must not keep switching: at most the initial
	// probe transition happened.
	if n.Transitions() > 2 {
		t.Fatalf("%d transitions on a skipped region", n.Transitions())
	}
}

func TestAdaptiveProbesEachPointOnce(t *testing.T) {
	pol, n := runAdaptive(t, 5, func(p *sim.Proc, n *machine.Node) {
		n.MemoryRounds(p, 1_000_000)
	})
	// Exactly 5 visits = 5 probes; convergence happens on exit of the
	// fifth visit.
	if got := pol.Chosen(0, "r"); got < 0 {
		t.Fatal("should have converged after probing all points")
	}
	st := pol.nodes[0].cells["r"]
	for i, s := range st.samples {
		if s.Energy <= 0 || s.Delay <= 0 {
			t.Fatalf("point %d never sampled: %+v", i, s)
		}
	}
	_ = n
}

func TestAdaptiveBeatsNothingOnMixedWorkload(t *testing.T) {
	// Sanity: the converged choice's weighted metric is no worse than
	// any sampled point's (it is the argmin of the samples).
	pol, _ := runAdaptive(t, 10, func(p *sim.Proc, n *machine.Node) {
		n.MemoryRounds(p, 500_000)
		n.Compute(p, 5e6)
	})
	st := pol.nodes[0].cells["r"]
	if st.chosen < 0 {
		t.Fatal("not converged")
	}
	best := core.WeightedED2P(st.samples[st.chosen].Energy, st.samples[st.chosen].Delay, core.DeltaHPC)
	for i, s := range st.samples {
		if core.WeightedED2P(s.Energy, s.Delay, core.DeltaHPC) < best-1e-12 {
			t.Fatalf("sample %d beats the chosen point", i)
		}
	}
}

func TestAdaptiveName(t *testing.T) {
	if NewAdaptive().Name() != "adaptive" {
		t.Fatal("name")
	}
}
