package dvs

import (
	"fmt"

	"repro/internal/machine"
	"repro/internal/powerpack"
	"repro/internal/sim"
)

// Slack is an MPI-aware interval governor — the successor idea to the
// paper's hand-tuned dynamic control (what the "jitter"-style systems
// published right after it automate). Unlike cpuspeed, which reads
// /proc/stat and is blind to busy-polling MPI waits, this governor
// instruments the runtime itself: it samples each node's time in the
// Spin and Blocked states, and scales nodes whose wait fraction is high
// down one operating point per interval (and back up when they become
// busy). Load imbalance then produces per-node frequencies — waiting
// nodes idle along slowly while the critical path stays fast — with no
// application annotations at all.
type Slack struct {
	// Interval is the sampling period.
	Interval sim.Duration
	// DownWaitFrac is the wait fraction at or above which a node steps
	// down one operating point.
	DownWaitFrac float64
	// UpWaitFrac is the wait fraction at or below which a node steps
	// back up one point.
	UpWaitFrac float64
}

// NewSlack returns the governor with its default tuning: 500 ms
// interval, step down when more than 50% of the interval was MPI wait,
// step up when under 20%.
func NewSlack() *Slack {
	return &Slack{
		Interval:     500 * sim.Millisecond,
		DownWaitFrac: 0.5,
		UpWaitFrac:   0.2,
	}
}

// Name implements Strategy.
func (*Slack) Name() string { return "slack" }

// Install implements Strategy: one governor process per node, starting
// from the base operating point.
func (g *Slack) Install(ctx InstallCtx) powerpack.RegionPolicy {
	if g.Interval <= 0 {
		panic("dvs: Slack with non-positive interval") //lint:allow panicfree (Install misuse is a programming error caught at startup)
	}
	for _, n := range ctx.Nodes {
		n := n
		mustSetOPAsync(n, ctx.BaseIdx)
		// Spawn on the node's own engine so the daemon lives on the
		// node's event-core shard in sharded runs.
		n.Engine().Spawn(fmt.Sprintf("slack%d", n.ID()), func(p *sim.Proc) {
			g.daemon(p, n, ctx.BaseIdx, ctx.Done)
		})
	}
	return nil
}

func (g *Slack) daemon(p *sim.Proc, n *machine.Node, baseIdx int, done func() bool) {
	wait := func() sim.Duration {
		return n.StateTime(machine.Spin) + n.StateTime(machine.Blocked)
	}
	prev := wait()
	for {
		p.Sleep(g.Interval)
		if done != nil && done() {
			return
		}
		cur := wait()
		frac := float64(cur-prev) / float64(g.Interval)
		prev = cur
		table := n.Params().Table
		switch {
		case frac >= g.DownWaitFrac:
			if next := table.StepDown(n.OPIndex()); next != n.OPIndex() {
				mustSetOP(p, n, next)
			}
		case frac <= g.UpWaitFrac:
			// Never exceed the experiment's base operating point.
			if next := table.StepUp(n.OPIndex()); next >= baseIdx && next != n.OPIndex() {
				mustSetOP(p, n, next)
			}
		}
	}
}
