package dvs

import (
	"testing"

	"repro/internal/dvfs"
	"repro/internal/machine"
	"repro/internal/powerpack"
	"repro/internal/sim"
)

func newCluster(t *testing.T, n int) (*sim.Engine, []*machine.Node) {
	t.Helper()
	e := sim.NewEngine()
	nodes := make([]*machine.Node, n)
	for i := range nodes {
		nodes[i] = machine.NewNode(e, i, machine.DefaultParams())
	}
	return e, nodes
}

func mustRun(t *testing.T, e *sim.Engine) {
	t.Helper()
	if _, err := e.Run(0); err != nil {
		t.Fatal(err)
	}
}

func TestStaticPinsAllNodes(t *testing.T) {
	e, nodes := newCluster(t, 4)
	pol := (Static{}).Install(InstallCtx{Eng: e, Nodes: nodes, BaseIdx: 3})
	if pol != nil {
		t.Fatal("static should not install a region policy")
	}
	e.Spawn("w", func(p *sim.Proc) { p.Sleep(sim.Second) })
	mustRun(t, e)
	for i, n := range nodes {
		if n.OPIndex() != 3 {
			t.Fatalf("node %d at index %d", i, n.OPIndex())
		}
	}
	if (Static{}).Name() != "static" {
		t.Fatal("name")
	}
}

func TestDynamicDropsAndRestores(t *testing.T) {
	e, nodes := newCluster(t, 1)
	d := NewDynamic("fft")
	pol := d.Install(InstallCtx{Eng: e, Nodes: nodes, BaseIdx: 1})
	if pol == nil {
		t.Fatal("dynamic must install a policy")
	}
	n := nodes[0]
	prof := powerpack.NewProfiler()
	ctx := powerpack.NewNodeCtx(n, prof, pol)
	var inRegion, inOther dvfs.Hz
	e.Spawn("app", func(p *sim.Proc) {
		p.Sleep(sim.Millisecond) // let the async base-point switch land
		ctx.EnterRegion(p, "fft")
		inRegion = n.OperatingPoint().Freq
		n.Compute(p, 1e6)
		ctx.ExitRegion(p, "fft")

		ctx.EnterRegion(p, "io") // not in the policy's region list
		inOther = n.OperatingPoint().Freq
		ctx.ExitRegion(p, "io")
	})
	mustRun(t, e)
	if inRegion != 600*dvfs.MHz {
		t.Fatalf("inside region at %v, want 600MHz", inRegion)
	}
	if inOther != 1200*dvfs.MHz {
		t.Fatalf("outside region at %v, want base 1200MHz", inOther)
	}
	if n.OperatingPoint().Freq != 1200*dvfs.MHz {
		t.Fatalf("final frequency %v", n.OperatingPoint().Freq)
	}
}

func TestDynamicNestedRegions(t *testing.T) {
	e, nodes := newCluster(t, 1)
	d := NewDynamic() // all regions
	pol := d.Install(InstallCtx{Eng: e, Nodes: nodes, BaseIdx: 0})
	n := nodes[0]
	ctx := powerpack.NewNodeCtx(n, powerpack.NewProfiler(), pol)
	transitionsMid := 0
	e.Spawn("app", func(p *sim.Proc) {
		p.Sleep(sim.Millisecond)
		ctx.EnterRegion(p, "outer")
		before := n.Transitions()
		ctx.EnterRegion(p, "inner") // nested: no extra transition
		ctx.ExitRegion(p, "inner")  // still nested: no restore yet
		transitionsMid = n.Transitions() - before
		if n.OperatingPoint().Freq != 600*dvfs.MHz {
			t.Error("left low point on inner exit")
		}
		ctx.ExitRegion(p, "outer")
	})
	mustRun(t, e)
	if transitionsMid != 0 {
		t.Fatalf("nested region caused %d transitions", transitionsMid)
	}
	if n.OperatingPoint().Freq != 1400*dvfs.MHz {
		t.Fatalf("final %v", n.OperatingPoint().Freq)
	}
}

func TestDynamicExplicitTarget(t *testing.T) {
	e, nodes := newCluster(t, 1)
	d := &Dynamic{TargetIdx: 2}
	pol := d.Install(InstallCtx{Eng: e, Nodes: nodes, BaseIdx: 0})
	n := nodes[0]
	ctx := powerpack.NewNodeCtx(n, powerpack.NewProfiler(), pol)
	e.Spawn("app", func(p *sim.Proc) {
		p.Sleep(sim.Millisecond)
		ctx.EnterRegion(p, "r")
		if n.OperatingPoint().Freq != 1000*dvfs.MHz {
			t.Errorf("target not applied: %v", n.OperatingPoint().Freq)
		}
		ctx.ExitRegion(p, "r")
	})
	mustRun(t, e)
}

func TestCpuspeedStaysHighUnderBusyLoad(t *testing.T) {
	e, nodes := newCluster(t, 1)
	n := nodes[0]
	done := false
	NewCpuspeed().Install(InstallCtx{Eng: e, Nodes: nodes, Done: func() bool { return done }})
	e.Spawn("app", func(p *sim.Proc) {
		n.Compute(p, 1.4e9*10) // 10 s of full-tilt work
		done = true
	})
	mustRun(t, e)
	if n.OPIndex() != 0 {
		t.Fatalf("busy node stepped down to index %d", n.OPIndex())
	}
	if n.Transitions() != 0 {
		t.Fatalf("%d transitions under constant load", n.Transitions())
	}
}

func TestCpuspeedStepsDownWhenIdle(t *testing.T) {
	e, nodes := newCluster(t, 1)
	n := nodes[0]
	done := false
	NewCpuspeed().Install(InstallCtx{Eng: e, Nodes: nodes, Done: func() bool { return done }})
	e.Spawn("app", func(p *sim.Proc) {
		n.IdleFor(p, 10*sim.Second)
		done = true
	})
	mustRun(t, e)
	// One step per interval: after 10 idle seconds it must be at the
	// bottom.
	if n.OPIndex() != n.Params().Table.Len()-1 {
		t.Fatalf("idle node at index %d", n.OPIndex())
	}
}

func TestCpuspeedJumpsBackToMax(t *testing.T) {
	e, nodes := newCluster(t, 1)
	n := nodes[0]
	done := false
	NewCpuspeed().Install(InstallCtx{Eng: e, Nodes: nodes, Done: func() bool { return done }})
	var idxAfterIdle int
	e.Spawn("app", func(p *sim.Proc) {
		n.IdleFor(p, 8*sim.Second)
		idxAfterIdle = n.OPIndex()
		n.Compute(p, 1.4e9*5) // sustained load
		done = true
	})
	mustRun(t, e)
	if idxAfterIdle == 0 {
		t.Fatal("daemon never stepped down during idle")
	}
	if n.OPIndex() != 0 {
		t.Fatalf("daemon did not jump back to max: index %d", n.OPIndex())
	}
	// The jump must be a single transition from wherever it was, not a
	// walk: count upward transitions of more than one step.
	jumped := false
	for _, ch := range n.FreqLog() {
		if ch.To.Freq == 1400*dvfs.MHz && ch.From.Freq <= 1000*dvfs.MHz {
			jumped = true
		}
	}
	if !jumped {
		t.Fatal("expected a direct jump to 1.4GHz")
	}
}

func TestCpuspeedTerminatesOnDone(t *testing.T) {
	e, nodes := newCluster(t, 2)
	done := false
	NewCpuspeed().Install(InstallCtx{Eng: e, Nodes: nodes, Done: func() bool { return done }})
	e.Spawn("app", func(p *sim.Proc) {
		p.Sleep(3 * sim.Second)
		done = true
	})
	mustRun(t, e) // would deadlock/never drain if daemons did not exit
	if e.Live() != 0 {
		t.Fatalf("%d processes still live", e.Live())
	}
}

func TestCpuspeedInvalidInterval(t *testing.T) {
	e, nodes := newCluster(t, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	(&Cpuspeed{Interval: 0}).Install(InstallCtx{Eng: e, Nodes: nodes})
}

func TestStrategyNames(t *testing.T) {
	if NewCpuspeed().Name() != "cpuspeed" || NewDynamic().Name() != "dynamic" {
		t.Fatal("names")
	}
}

func TestSlackGovernorScalesWaitingNodeDown(t *testing.T) {
	e, nodes := newCluster(t, 2)
	done := false
	NewSlack().Install(InstallCtx{Eng: e, Nodes: nodes, BaseIdx: 0, Done: func() bool { return done }})
	// Node 0 computes; node 1 sits in MPI-style spin-wait.
	e.Spawn("busy", func(p *sim.Proc) {
		nodes[0].Compute(p, 1.4e9*8) // 8 s of work
		done = true
	})
	e.Spawn("waiting", func(p *sim.Proc) {
		nodes[1].SetState(machine.Spin)
		p.Sleep(8 * sim.Second)
		nodes[1].SetState(machine.Idle)
	})
	mustRun(t, e)
	if nodes[0].OPIndex() != 0 {
		t.Fatalf("busy node stepped down to %d", nodes[0].OPIndex())
	}
	if nodes[1].OPIndex() != nodes[1].Params().Table.Len()-1 {
		t.Fatalf("waiting node only reached index %d", nodes[1].OPIndex())
	}
}

func TestSlackGovernorRecovers(t *testing.T) {
	e, nodes := newCluster(t, 1)
	n := nodes[0]
	done := false
	NewSlack().Install(InstallCtx{Eng: e, Nodes: nodes, BaseIdx: 0, Done: func() bool { return done }})
	e.Spawn("app", func(p *sim.Proc) {
		n.SetState(machine.Spin) // long wait: governor walks down
		p.Sleep(5 * sim.Second)
		n.SetState(machine.Idle)
		n.Compute(p, 1.4e9*5) // sustained work: governor walks back up
		done = true
	})
	mustRun(t, e)
	if n.OPIndex() != 0 {
		t.Fatalf("governor did not recover to base: index %d", n.OPIndex())
	}
}

func TestSlackGovernorRespectsBasePoint(t *testing.T) {
	e, nodes := newCluster(t, 1)
	n := nodes[0]
	done := false
	// Base point is 1.0 GHz (index 2): recovery must stop there.
	NewSlack().Install(InstallCtx{Eng: e, Nodes: nodes, BaseIdx: 2, Done: func() bool { return done }})
	e.Spawn("app", func(p *sim.Proc) {
		n.SetState(machine.Spin)
		p.Sleep(4 * sim.Second)
		n.SetState(machine.Idle)
		n.Compute(p, 1e9*5)
		done = true
	})
	mustRun(t, e)
	if n.OPIndex() != 2 {
		t.Fatalf("governor at index %d, want base 2", n.OPIndex())
	}
}

func TestSlackGovernorValidation(t *testing.T) {
	e, nodes := newCluster(t, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	(&Slack{Interval: 0}).Install(InstallCtx{Eng: e, Nodes: nodes})
}
