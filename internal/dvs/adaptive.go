package dvs

import (
	"math"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/power"
	"repro/internal/powerpack"
	"repro/internal/sim"
)

// Adaptive is an automatic version of the paper's hand-tuned dynamic
// control — the direction its conclusion points at. Instead of a human
// choosing the operating point for each marked region, the governor
// learns it online: the first visits to a region sample each operating
// point once (measuring the region's time and energy at that point),
// then every later visit runs at the point minimizing the weighted ED2P
// under the configured weight factor. Each node learns independently,
// so load imbalance yields per-node settings.
//
// Regions shorter than MinSample when first measured are left at the
// base point: their per-visit DVS transitions would cost more than the
// slack is worth, and their measurements would be noise.
type Adaptive struct {
	// Delta is the weight factor for the selection metric
	// (core.DeltaHPC by default).
	Delta float64
	// MinSample is the minimum measured region duration for the
	// governor to keep tuning it.
	MinSample sim.Duration
}

// NewAdaptive returns the governor with the paper's HPC weight.
func NewAdaptive() *Adaptive {
	return &Adaptive{Delta: core.DeltaHPC, MinSample: 10 * sim.Millisecond}
}

// Name implements Strategy.
func (*Adaptive) Name() string { return "adaptive" }

// regionKey identifies a (node, region) learning cell.
type regionKey struct {
	node   int
	region string
}

type regionState struct {
	// nextProbe is the operating-point index to sample next; once it
	// passes the table, the cell is converged.
	nextProbe int
	// samples[i] is the (energy, time) observed at point i.
	samples []core.Point
	// chosen is the converged operating-point index (-1 while probing).
	chosen int
	// skip marks regions too short to be worth tuning.
	skip bool

	// per-visit measurement context
	entryTime   sim.Time
	entryEnergy power.Joules
	entryIdx    int
}

type adaptivePolicy struct {
	a       *Adaptive
	baseIdx int
	cells   map[regionKey]*regionState
	depth   map[int]int
}

// Install implements Strategy.
func (a *Adaptive) Install(ctx InstallCtx) powerpack.RegionPolicy {
	for _, n := range ctx.Nodes {
		mustSetOPAsync(n, ctx.BaseIdx)
	}
	return &adaptivePolicy{
		a:       a,
		baseIdx: ctx.BaseIdx,
		cells:   make(map[regionKey]*regionState),
		depth:   make(map[int]int),
	}
}

// OnEnter implements powerpack.RegionPolicy.
func (ap *adaptivePolicy) OnEnter(p *sim.Proc, n *machine.Node, region string) {
	ap.depth[n.ID()]++
	if ap.depth[n.ID()] != 1 {
		return // only the outermost region is steered
	}
	key := regionKey{node: n.ID(), region: region}
	st := ap.cells[key]
	if st == nil {
		table := n.Params().Table
		st = &regionState{
			samples: make([]core.Point, table.Len()),
			chosen:  -1,
		}
		ap.cells[key] = st
	}
	if st.skip {
		return
	}
	target := st.chosen
	if target < 0 {
		target = st.nextProbe
	}
	st.entryIdx = target
	if target != n.OPIndex() {
		mustSetOP(p, n, target)
	}
	st.entryTime = p.Now()
	st.entryEnergy = n.EnergyAt(p.Now())
}

// OnExit implements powerpack.RegionPolicy.
func (ap *adaptivePolicy) OnExit(p *sim.Proc, n *machine.Node, region string) {
	if ap.depth[n.ID()] == 0 {
		panic("dvs: adaptive region exit without enter") //lint:allow panicfree (region-nesting invariant; unbalanced Enter/Exit is a workload bug)
	}
	ap.depth[n.ID()]--
	if ap.depth[n.ID()] != 0 {
		return
	}
	key := regionKey{node: n.ID(), region: region}
	st := ap.cells[key]
	if st == nil || st.skip {
		return
	}
	now := p.Now()
	elapsed := now.Sub(st.entryTime)
	if st.chosen < 0 {
		if elapsed < ap.a.MinSample {
			// Not worth tuning; park at base forever.
			st.skip = true
		} else {
			st.samples[st.entryIdx] = core.Point{
				Energy: float64(n.EnergyAt(now) - st.entryEnergy),
				Delay:  elapsed.Seconds(),
			}
			st.nextProbe++
			if st.nextProbe >= len(st.samples) {
				st.chosen = ap.converge(st.samples)
			}
		}
	}
	if n.OPIndex() != ap.baseIdx {
		mustSetOP(p, n, ap.baseIdx)
	}
}

// converge picks the weighted-ED2P argmin over the sampled points.
func (ap *adaptivePolicy) converge(samples []core.Point) int {
	best, bestVal := 0, math.Inf(1)
	for i, s := range samples {
		if s.Energy <= 0 || s.Delay <= 0 {
			continue
		}
		v := core.WeightedED2P(s.Energy, s.Delay, ap.a.Delta)
		if v < bestVal {
			best, bestVal = i, v
		}
	}
	return best
}

// Chosen reports the converged operating-point index for a node's
// region, or -1 while it is still probing (or skipped). Exposed for
// tests and analysis tools.
func (ap *adaptivePolicy) Chosen(node int, region string) int {
	st := ap.cells[regionKey{node: node, region: region}]
	if st == nil || st.chosen < 0 || st.skip {
		return -1
	}
	return st.chosen
}
