package dvs

import (
	"math"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/power"
	"repro/internal/powerpack"
	"repro/internal/sim"
)

// Adaptive is an automatic version of the paper's hand-tuned dynamic
// control — the direction its conclusion points at. Instead of a human
// choosing the operating point for each marked region, the governor
// learns it online: the first visits to a region sample each operating
// point once (measuring the region's time and energy at that point),
// then every later visit runs at the point minimizing the weighted ED2P
// under the configured weight factor. Each node learns independently,
// so load imbalance yields per-node settings.
//
// Regions shorter than MinSample when first measured are left at the
// base point: their per-visit DVS transitions would cost more than the
// slack is worth, and their measurements would be noise.
type Adaptive struct {
	// Delta is the weight factor for the selection metric
	// (core.DeltaHPC by default).
	Delta float64
	// MinSample is the minimum measured region duration for the
	// governor to keep tuning it.
	MinSample sim.Duration
}

// NewAdaptive returns the governor with the paper's HPC weight.
func NewAdaptive() *Adaptive {
	return &Adaptive{Delta: core.DeltaHPC, MinSample: 10 * sim.Millisecond}
}

// Name implements Strategy.
func (*Adaptive) Name() string { return "adaptive" }

type regionState struct {
	// nextProbe is the operating-point index to sample next; once it
	// passes the table, the cell is converged.
	nextProbe int
	// samples[i] is the (energy, time) observed at point i.
	samples []core.Point
	// chosen is the converged operating-point index (-1 while probing).
	chosen int
	// skip marks regions too short to be worth tuning.
	skip bool

	// per-visit measurement context
	entryTime   sim.Time
	entryEnergy power.Joules
	entryIdx    int
}

// nodeCells is one node's learning state. Each node's struct is only
// touched by processes running on that node, so ranks on different
// event-core shards never share a cell map and no locking is needed.
type nodeCells struct {
	depth int
	cells map[string]*regionState
}

type adaptivePolicy struct {
	a       *Adaptive
	baseIdx int
	// nodes is indexed by node ID; the slice itself is built at Install
	// and read-only thereafter.
	nodes []*nodeCells
}

// Install implements Strategy.
func (a *Adaptive) Install(ctx InstallCtx) powerpack.RegionPolicy {
	maxID := -1
	for _, n := range ctx.Nodes {
		mustSetOPAsync(n, ctx.BaseIdx)
		if n.ID() > maxID {
			maxID = n.ID()
		}
	}
	ap := &adaptivePolicy{
		a:       a,
		baseIdx: ctx.BaseIdx,
		nodes:   make([]*nodeCells, maxID+1),
	}
	for _, n := range ctx.Nodes {
		ap.nodes[n.ID()] = &nodeCells{cells: make(map[string]*regionState)}
	}
	return ap
}

// OnEnter implements powerpack.RegionPolicy.
func (ap *adaptivePolicy) OnEnter(p *sim.Proc, n *machine.Node, region string) {
	nc := ap.nodes[n.ID()]
	nc.depth++
	if nc.depth != 1 {
		return // only the outermost region is steered
	}
	st := nc.cells[region]
	if st == nil {
		table := n.Params().Table
		st = &regionState{
			samples: make([]core.Point, table.Len()),
			chosen:  -1,
		}
		nc.cells[region] = st
	}
	if st.skip {
		return
	}
	target := st.chosen
	if target < 0 {
		target = st.nextProbe
	}
	st.entryIdx = target
	if target != n.OPIndex() {
		mustSetOP(p, n, target)
	}
	st.entryTime = p.Now()
	st.entryEnergy = n.EnergyAt(p.Now())
}

// OnExit implements powerpack.RegionPolicy.
func (ap *adaptivePolicy) OnExit(p *sim.Proc, n *machine.Node, region string) {
	nc := ap.nodes[n.ID()]
	if nc.depth == 0 {
		panic("dvs: adaptive region exit without enter") //lint:allow panicfree (region-nesting invariant; unbalanced Enter/Exit is a workload bug)
	}
	nc.depth--
	if nc.depth != 0 {
		return
	}
	st := nc.cells[region]
	if st == nil || st.skip {
		return
	}
	now := p.Now()
	elapsed := now.Sub(st.entryTime)
	if st.chosen < 0 {
		if elapsed < ap.a.MinSample {
			// Not worth tuning; park at base forever.
			st.skip = true
		} else {
			st.samples[st.entryIdx] = core.Point{
				Energy: float64(n.EnergyAt(now) - st.entryEnergy),
				Delay:  elapsed.Seconds(),
			}
			st.nextProbe++
			if st.nextProbe >= len(st.samples) {
				st.chosen = ap.converge(st.samples)
			}
		}
	}
	if n.OPIndex() != ap.baseIdx {
		mustSetOP(p, n, ap.baseIdx)
	}
}

// converge picks the weighted-ED2P argmin over the sampled points.
func (ap *adaptivePolicy) converge(samples []core.Point) int {
	best, bestVal := 0, math.Inf(1)
	for i, s := range samples {
		if s.Energy <= 0 || s.Delay <= 0 {
			continue
		}
		v := core.WeightedED2P(s.Energy, s.Delay, ap.a.Delta)
		if v < bestVal {
			best, bestVal = i, v
		}
	}
	return best
}

// Chosen reports the converged operating-point index for a node's
// region, or -1 while it is still probing (or skipped). Exposed for
// tests and analysis tools.
func (ap *adaptivePolicy) Chosen(node int, region string) int {
	if node < 0 || node >= len(ap.nodes) || ap.nodes[node] == nil {
		return -1
	}
	st := ap.nodes[node].cells[region]
	if st == nil || st.chosen < 0 || st.skip {
		return -1
	}
	return st.chosen
}
