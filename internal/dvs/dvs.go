// Package dvs implements the three distributed DVS strategies the paper
// studies (Section 4):
//
//  1. Cpuspeed — the stock Linux daemon: per-node, interval-driven,
//     steering frequency from /proc/stat CPU-idle percentages.
//  2. Static — one synchronized fixed frequency on all nodes for the
//     whole run.
//  3. Dynamic — application-directed control: PowerPack calls inserted
//     at region boundaries drop to a low operating point inside
//     slack-heavy program phases and restore the base point on exit.
package dvs

import (
	"fmt"

	"repro/internal/machine"
	"repro/internal/powerpack"
	"repro/internal/sim"
)

// InstallCtx is what a strategy needs to arm itself on a cluster.
type InstallCtx struct {
	Eng   *sim.Engine
	Nodes []*machine.Node
	// BaseIdx is the operating point the experiment sweeps (the x-axis
	// of the paper's crescendos).
	BaseIdx int
	// Done reports whether the workload has completed; daemons poll it
	// to terminate so the simulation can drain.
	Done func() bool
}

// mustSetOP asserts a blocking operating-point switch succeeds.
// Strategies compute indices from the table itself (StepUp/StepDown
// clamp, BaseIdx comes from the sweep), so a failure is a strategy bug
// and fails fast rather than silently running at the wrong frequency.
func mustSetOP(p *sim.Proc, n *machine.Node, idx int) {
	if err := n.SetOperatingPointIndex(p, idx); err != nil {
		panic(err)
	}
}

// mustSetOPAsync is mustSetOP for event-context (timer daemon) switches.
func mustSetOPAsync(n *machine.Node, idx int) {
	if err := n.SetOperatingPointIndexAsync(idx); err != nil {
		panic(err)
	}
}

// Strategy is one distributed DVS policy.
type Strategy interface {
	// Name identifies the strategy in reports ("cpuspeed", "static",
	// "dynamic").
	Name() string
	// Install arms the strategy on the cluster before the workload
	// starts, returning the region policy PowerPack should apply (nil
	// when the strategy ignores application regions).
	Install(ctx InstallCtx) powerpack.RegionPolicy
}

// Static pins every node to the base operating point for the whole run
// (the paper's "static control": the user synchronizes and sets the
// frequency for all nodes to a single value).
type Static struct{}

// Name implements Strategy.
func (Static) Name() string { return "static" }

// Install implements Strategy.
func (Static) Install(ctx InstallCtx) powerpack.RegionPolicy {
	for _, n := range ctx.Nodes {
		mustSetOPAsync(n, ctx.BaseIdx)
	}
	return nil
}

// Dynamic is the paper's hand-tuned dynamic control: nodes start at the
// base point; when the application enters a marked slack region the
// node drops to the lowest operating point, and restores the base point
// on exit. Regions holds the marked region names to act on (empty =
// act on every region).
type Dynamic struct {
	// Regions, if non-empty, limits the policy to these region names.
	Regions []string
	// TargetIdx is the operating point used inside regions; a negative
	// value means the table's lowest point.
	TargetIdx int
}

// NewDynamic builds the paper's configuration: drop to the minimum
// speed inside the named regions.
func NewDynamic(regions ...string) *Dynamic {
	return &Dynamic{Regions: regions, TargetIdx: -1}
}

// Name implements Strategy.
func (*Dynamic) Name() string { return "dynamic" }

type dynamicPolicy struct {
	d       *Dynamic
	baseIdx int
	target  int
	// depth[node] is the nesting depth of acted-on regions. A slice
	// indexed by node ID rather than a map: each slot is written only by
	// the process running on that node, so ranks on different event-core
	// shards never touch the same element and no locking is needed.
	depth []int
}

// Install implements Strategy.
func (d *Dynamic) Install(ctx InstallCtx) powerpack.RegionPolicy {
	for _, n := range ctx.Nodes {
		mustSetOPAsync(n, ctx.BaseIdx)
	}
	target := d.TargetIdx
	if target < 0 {
		if len(ctx.Nodes) == 0 {
			panic("dvs: Dynamic.Install with no nodes") //lint:allow panicfree (Install misuse is a programming error caught at startup)
		}
		target = ctx.Nodes[0].Params().Table.Len() - 1
	}
	return &dynamicPolicy{d: d, baseIdx: ctx.BaseIdx, target: target, depth: perNodeSlots(ctx.Nodes)}
}

// perNodeSlots sizes a node-ID-indexed slice for a node set.
func perNodeSlots(nodes []*machine.Node) []int {
	maxID := -1
	for _, n := range nodes {
		if n.ID() > maxID {
			maxID = n.ID()
		}
	}
	return make([]int, maxID+1)
}

func (dp *dynamicPolicy) applies(region string) bool {
	if len(dp.d.Regions) == 0 {
		return true
	}
	for _, r := range dp.d.Regions {
		if r == region {
			return true
		}
	}
	return false
}

// OnEnter implements powerpack.RegionPolicy.
func (dp *dynamicPolicy) OnEnter(p *sim.Proc, n *machine.Node, region string) {
	if !dp.applies(region) {
		return
	}
	dp.depth[n.ID()]++
	if dp.depth[n.ID()] == 1 {
		mustSetOP(p, n, dp.target)
	}
}

// OnExit implements powerpack.RegionPolicy.
func (dp *dynamicPolicy) OnExit(p *sim.Proc, n *machine.Node, region string) {
	if !dp.applies(region) {
		return
	}
	if dp.depth[n.ID()] == 0 {
		panic(fmt.Sprintf("dvs: region %q exit without enter on node %d", region, n.ID())) //lint:allow panicfree (region-nesting invariant; unbalanced Enter/Exit is a workload bug)
	}
	dp.depth[n.ID()]--
	if dp.depth[n.ID()] == 0 {
		mustSetOP(p, n, dp.baseIdx)
	}
}
