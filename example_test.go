package repro_test

import (
	"fmt"

	"repro"
)

// The weighted ED2P metric (the paper's Equation 5) and the Figure 2
// question it answers: how much energy must a slower point save to be
// "best"?
func ExampleWeightedED2P() {
	// Two operating points, normalized: the baseline and one that is
	// 5% slower but saves 15% energy.
	base := repro.WeightedED2P(1.0, 1.0, repro.DeltaHPC)
	slower := repro.WeightedED2P(0.85, 1.05, repro.DeltaHPC)
	fmt.Printf("baseline=%.3f slower=%.3f better=%v\n", base, slower, slower < base)

	// The break-even saving for a 5% slowdown under the HPC weight.
	frac := repro.RequiredEnergyFraction(repro.DeltaHPC, 1.05)
	fmt.Printf("break-even saving: %.1f%%\n", (1-frac)*100)
	// Output:
	// baseline=1.000 slower=0.987 better=true
	// break-even saving: 13.6%
}

// Selecting "best" operating points from a measured crescendo, as in
// the paper's Tables 1 and 3.
func ExampleCrescendo_SelectOperatingPoints() {
	c := repro.Crescendo{Points: []repro.CrescendoPoint{
		{Label: "1.4GHz", Freq: 1400 * repro.MHz, Energy: 100, Delay: 10.0},
		{Label: "1.2GHz", Freq: 1200 * repro.MHz, Energy: 90, Delay: 10.3},
		{Label: "1.0GHz", Freq: 1000 * repro.MHz, Energy: 78, Delay: 10.8},
		{Label: "800MHz", Freq: 800 * repro.MHz, Energy: 68, Delay: 11.6},
		{Label: "600MHz", Freq: 600 * repro.MHz, Energy: 60, Delay: 13.0},
	}}
	ops := c.SelectOperatingPoints()
	fmt.Printf("HPC=%v energy=%v performance=%v\n", ops.HPC.Freq, ops.Energy.Freq, ops.Performance.Freq)
	// Output:
	// HPC=1.0GHz energy=600MHz performance=1.4GHz
}

// A complete experiment: sweep the memory-bound PowerPack
// microbenchmark across the SpeedStep table (the paper's Figure 6).
// The simulation is deterministic, so the numbers are exact.
func ExampleRunner_Sweep() {
	cfg := repro.DefaultConfig()
	cfg.Settle = 30 * repro.Second
	cfg.Reps = 1
	cfg.UseTrueEnergy = true
	runner := repro.MustRunner(cfg)

	c, err := runner.Sweep(repro.NewMemBench(40), repro.Static{})
	if err != nil {
		fmt.Println(err)
		return
	}
	n := c.Normalized(0)
	for _, p := range n.Points {
		fmt.Printf("%-7v E=%.3f D=%.3f\n", p.Freq, p.Energy, p.Delay)
	}
	// Output:
	// 1.4GHz  E=1.000 D=1.000
	// 1.2GHz  E=0.905 D=1.007
	// 1.0GHz  E=0.781 D=1.016
	// 800MHz  E=0.686 D=1.030
	// 600MHz  E=0.595 D=1.054
}
