package repro

import (
	"bytes"
	"math"
	"testing"
)

func TestFacadeEndToEnd(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Settle = 30 * Second
	cfg.Reps = 1
	cfg.UseTrueEnergy = true
	runner := MustRunner(cfg)

	c, err := runner.Sweep(NewSwim(40), Static{})
	if err != nil {
		t.Fatal(err)
	}
	n := c.Normalized(0)
	if n.Points[4].Energy >= 1 || n.Points[4].Delay <= 1 {
		t.Fatalf("600MHz point: %+v", n.Points[4])
	}
	if got := n.Points[n.Best(DeltaHPC)].Freq; got != 1000*MHz {
		t.Fatalf("swim HPC best %v", got)
	}
}

func TestFacadeMetrics(t *testing.T) {
	if ED2P(2, 2) != 8 {
		t.Fatal("ED2P")
	}
	if math.Abs(WeightedED2P(0.5, 1.2, 0)-ED2P(0.5, 1.2)) > 1e-12 {
		t.Fatal("WeightedED2P at d=0")
	}
	if f := RequiredEnergyFraction(DeltaHPC, 1.05); f <= 0.8 || f >= 0.9 {
		t.Fatalf("fraction %v", f)
	}
}

func TestFacadeHardwareTables(t *testing.T) {
	tab := PentiumM14()
	if tab.Len() != 5 || tab.Highest().Freq != 1400*MHz {
		t.Fatal("Pentium M table")
	}
	if Default100Mb().BandwidthBytesPerSec <= 0 {
		t.Fatal("net config")
	}
	if DefaultMPIConfig().EagerThreshold <= 0 {
		t.Fatal("mpi config")
	}
	if DefaultMachineParams().CPUDynAtTop <= 0 {
		t.Fatal("machine params")
	}
}

func TestFacadeWorkloadConstructors(t *testing.T) {
	ws := []Workload{
		NewFT('A', 4), NewTranspose(1), NewSwim(1), NewMgrid(1),
		NewMemBench(1), NewCacheBench(1), NewRegBench(1),
		NewCommBench256K(1), NewCommBench4K(1),
		NewEP('A', 4), NewCG('A', 4), NewIS('A', 4), NewMG('A', 4), NewLU('A', 4),
	}
	for _, w := range ws {
		if w.Name() == "" || w.Ranks() < 1 {
			t.Fatalf("bad workload %T", w)
		}
	}
	if RegionFFT != "fft" || RegionStep2 != "step2" || RegionStep3 != "step3" {
		t.Fatal("region names")
	}
}

func TestFacadeStrategies(t *testing.T) {
	var s Strategy = Static{}
	if s.Name() != "static" {
		t.Fatal("static")
	}
	if NewDynamic("fft").Name() != "dynamic" {
		t.Fatal("dynamic")
	}
	if NewCpuspeed().Name() != "cpuspeed" {
		t.Fatal("cpuspeed")
	}
	if NewAdaptive().Name() != "adaptive" {
		t.Fatal("adaptive")
	}
}

func TestFacadeAnalysis(t *testing.T) {
	c := Crescendo{Points: []CrescendoPoint{
		{Label: "fast", Freq: 1400 * MHz, Energy: 100, Delay: 10},
		{Label: "slow", Freq: 600 * MHz, Energy: 60, Delay: 13},
	}}
	if s := Savings(c, 0); len(s) != 2 || s[1].EnergySaved <= 0 {
		t.Fatalf("savings %+v", s)
	}
	if f := ParetoFrontier(c); len(f) != 2 {
		t.Fatalf("frontier %v", f)
	}
	if _, ok := CrossoverDelta(c.Points[0], c.Points[1]); !ok {
		t.Fatal("crossover")
	}
	if ivs := BestByDelta(c, 21); len(ivs) < 2 {
		t.Fatalf("intervals %+v", ivs)
	}
	if picks := PowerCapSchedule([]Crescendo{c}, 8); picks == nil || picks[0].Point != 1 {
		t.Fatalf("cap picks %+v", picks)
	}
	cost := DefaultCostModel()
	if cost.EnergyCostUSD(3.6e6) <= 0 {
		t.Fatal("cost")
	}
	rel := DefaultReliabilityModel()
	if rel.ClusterMTBFHours(16, 20) <= 0 || LifeFactor(45, 55) != 2 {
		t.Fatal("reliability")
	}
}

func TestFacadePlatformsAndFabrics(t *testing.T) {
	if LowPowerMachineParams().Table.Len() != 1 {
		t.Fatal("low-power params")
	}
	if Gigabit().BandwidthBytesPerSec <= Default100Mb().BandwidthBytesPerSec {
		t.Fatal("gigabit")
	}
	if PentiumM14().MustSubdivide(7).Len() != 7 {
		t.Fatal("subdivide")
	}
	// Tree fabric through a runner config.
	cfg := DefaultConfig()
	cfg.Settle = 10 * Second
	cfg.Reps = 1
	cfg.UseTrueEnergy = true
	cfg.Fabric = func(eng *Engine, ports int) Fabric {
		return NewTree(eng, ports, TreeConfig{
			Host:                       Default100Mb(),
			PortsPerEdge:               2,
			UplinkBandwidthBytesPerSec: 5e6,
			CoreLatency:                20 * Microsecond,
		})
	}
	ft := NewFT('A', 4)
	ft.IterOverride = 1
	res, err := MustRunner(cfg).RunOnce(ft, Static{}, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.EnergyTrue <= 0 {
		t.Fatal("tree-fabric run")
	}
}

func TestFacadeExtendedWorkloads(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Settle = 10 * Second
	cfg.Reps = 1
	cfg.UseTrueEnergy = true
	r := MustRunner(cfg)

	mg := NewMG('A', 4)
	mg.IterOverride = 1
	lu := NewLU('A', 4)
	lu.IterOverride = 1
	for _, w := range []Workload{mg, lu, NewSumma(1024, 2), NewSynthetic(3, 2, 6, 1)} {
		res, err := r.RunOnce(w, NewAdaptive(), 0, 1)
		if err != nil {
			t.Fatalf("%s: %v", w.Name(), err)
		}
		if res.Delay <= 0 {
			t.Fatalf("%s: no delay", w.Name())
		}
	}
}

func TestFacadeTraceRecording(t *testing.T) {
	var archive bytes.Buffer
	cfg := DefaultConfig()
	cfg.Settle = 10 * Second
	cfg.Reps = 1
	cfg.UseTrueEnergy = true
	cfg.TraceInterval = 100 * Millisecond
	cfg.TraceSinks = func(RunInfo) []TraceSink {
		return []TraceSink{NewTraceWriter(&archive)}
	}
	res, err := MustRunner(cfg).RunOnce(NewSwim(20), Static{}, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace == nil || res.Trace.Ticks() == 0 {
		t.Fatal("no trace")
	}
	mean, err := res.Trace.MeanPower(0)
	if err != nil {
		t.Fatal(err)
	}
	// The archived binary trace replays into identical statistics.
	rd, err := NewTraceReader(&archive)
	if err != nil {
		t.Fatal(err)
	}
	replayed := NewTraceStats()
	if err := rd.Replay(replayed); err != nil {
		t.Fatal(err)
	}
	rmean, err := replayed.MeanPower(0)
	if err != nil {
		t.Fatal(err)
	}
	if rmean != mean || replayed.Ticks() != res.Trace.Ticks() {
		t.Fatalf("replayed stats differ: %v/%d vs %v/%d", rmean, replayed.Ticks(), mean, res.Trace.Ticks())
	}
}
