// Custom: extend the library with your own workload and DVS strategy
// through the public API. The workload is a 1-D iterative stencil with
// halo exchange (compute-heavy interior, neighbor communication each
// step); the strategy is a per-node governor that reacts to utilization
// like cpuspeed but steps proportionally instead of jumping to max —
// the kind of policy the paper's framework is meant to let you study.
package main

import (
	"fmt"
	"log"

	"repro"
)

// stencil is a custom SPMD workload: each rank owns a slab of a 1-D
// grid and per iteration computes its interior then exchanges halos
// with its neighbors.
type stencil struct {
	cells int64 // per rank
	iters int
	ranks int
}

func (s *stencil) Name() string { return "stencil" }
func (s *stencil) Ranks() int   { return s.ranks }

func (s *stencil) Run(ctx repro.WorkloadCtx) {
	const haloBytes = 64 << 10
	me := ctx.Rank.ID()
	n := ctx.Rank.Size()
	for it := 0; it < s.iters; it++ {
		// Interior update: ~1 DRAM access per 4 cells (cache lines),
		// ~12 cycles per cell.
		ctx.PP.EnterRegion(ctx.P, "compute")
		ctx.Node.MemoryRounds(ctx.P, s.cells/4)
		ctx.Node.Compute(ctx.P, float64(s.cells)*12)
		ctx.PP.ExitRegion(ctx.P, "compute")

		// Halo exchange with neighbors.
		ctx.PP.EnterRegion(ctx.P, "halo")
		if me > 0 {
			ctx.Rank.Sendrecv(ctx.P, me-1, 1, haloBytes, nil, me-1, 1)
		}
		if me < n-1 {
			ctx.Rank.Sendrecv(ctx.P, me+1, 1, haloBytes, nil, me+1, 1)
		}
		ctx.PP.ExitRegion(ctx.P, "halo")
	}
}

// proportional is a custom strategy: a per-node daemon that maps the
// last interval's utilization onto the operating-point table instead of
// cpuspeed's jump-to-max policy.
type proportional struct {
	interval repro.Duration
}

func (*proportional) Name() string { return "proportional" }

func (g *proportional) Install(ctx repro.StrategyInstallCtx) repro.RegionPolicy {
	for _, n := range ctx.Nodes {
		n := n
		ctx.Eng.Spawn(fmt.Sprintf("prop%d", n.ID()), func(p *repro.Proc) {
			prevBusy, prevIdle := n.Utilization()
			for {
				p.Sleep(g.interval)
				if ctx.Done != nil && ctx.Done() {
					return
				}
				busy, idle := n.Utilization()
				db, di := busy-prevBusy, idle-prevIdle
				prevBusy, prevIdle = busy, idle
				if db+di <= 0 {
					continue
				}
				util := float64(db) / float64(db+di)
				table := n.Params().Table
				// Map utilization onto the table: fully busy picks the
				// fastest point, fully idle the slowest.
				idx := int((1 - util) * float64(table.Len()))
				if idx >= table.Len() {
					idx = table.Len() - 1
				}
				if idx != n.OPIndex() {
					if err := n.SetOperatingPointIndex(p, idx); err != nil {
						// The index is clamped to the table, so this is
						// unreachable; if it ever fires, stop the daemon
						// rather than keep issuing bad transitions.
						return
					}
				}
			}
		})
	}
	return nil
}

func main() {
	cfg := repro.DefaultConfig()
	cfg.Settle = 30 * repro.Second
	cfg.Reps = 1
	cfg.UseTrueEnergy = true
	runner, err := repro.NewRunner(cfg)
	if err != nil {
		log.Fatal(err)
	}

	w := &stencil{cells: 8 << 20, iters: 10, ranks: 8}

	static, err := runner.Sweep(w, repro.Static{})
	if err != nil {
		log.Fatal(err)
	}
	norm := static.Normalized(0)
	fmt.Println("custom stencil workload — static DVS crescendo:")
	for i, p := range static.Points {
		fmt.Printf("  %-8v E=%.3f D=%.3f\n", p.Freq, norm.Points[i].Energy, norm.Points[i].Delay)
	}
	best := norm.Best(repro.DeltaHPC)
	fmt.Printf("HPC best operating point: %v (%.1f%% more efficient than 1.4GHz)\n\n",
		static.Points[best].Freq, 100*norm.Improvement(best, 0, repro.DeltaHPC))

	// Dynamic control on the halo region only.
	dyn, err := runner.Run(w, repro.NewDynamic("halo"), 0)
	if err != nil {
		log.Fatal(err)
	}
	base, err := runner.Run(w, repro.Static{}, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dynamic (halo@600MHz):  E=%.3f D=%.3f vs static 1.4GHz\n",
		float64(dyn.EnergyTrue)/float64(base.EnergyTrue),
		dyn.Delay.Seconds()/base.Delay.Seconds())

	// The custom governor, plugged in exactly like the built-ins.
	prop, err := runner.Run(w, &proportional{interval: repro.Second}, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("custom proportional:    E=%.3f D=%.3f vs static 1.4GHz\n",
		float64(prop.EnergyTrue)/float64(base.EnergyTrue),
		prop.Delay.Seconds()/base.Delay.Seconds())
}
