// Economics: translate DVS energy savings into the quantities the
// paper's introduction argues with — operating cost and component
// failure rates. Runs FT class B at the fastest point and at the HPC
// best point, then prices a year of continuous operation and estimates
// the cluster's failure interval at both settings.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	cfg := repro.DefaultConfig()
	cfg.Settle = 30 * repro.Second
	cfg.Reps = 1
	cfg.UseTrueEnergy = true
	runner, err := repro.NewRunner(cfg)
	if err != nil {
		log.Fatal(err)
	}

	ft := repro.NewFT('B', 8)
	ft.IterOverride = 4

	crescendo, err := runner.Sweep(ft, repro.Static{})
	if err != nil {
		log.Fatal(err)
	}
	norm := crescendo.Normalized(0)

	// Where is each point "best"? (paper Fig. 2 turned into a table)
	fmt.Println("best operating point by weight factor d:")
	for _, iv := range repro.BestByDelta(norm, 401) {
		fmt.Printf("  d in [%+.2f, %+.2f] → %s\n", iv.From, iv.To, iv.Label)
	}

	// Savings table against the fastest point.
	fmt.Println("\nsavings against 1.4GHz:")
	for _, s := range repro.Savings(crescendo, 0) {
		fmt.Printf("  %-16s energy -%4.1f%%  time +%4.1f%%  weighted-ED2P %+5.1f%%\n",
			s.Label, s.EnergySaved*100, s.DelayPenalty*100, s.ImprovementPc)
	}

	// Price a year of continuous operation at the two endpoints.
	cost := repro.DefaultCostModel()
	rel := repro.DefaultReliabilityModel()
	nodes := float64(ft.Ranks())

	describe := func(label string, p repro.CrescendoPoint) {
		meanW := p.Energy / p.Delay / nodes // average watts per node
		annual := cost.AnnualCostUSD(p.Energy, p.Delay) * 1
		tempC := rel.NodeTempC(meanW)
		mtbf := rel.ClusterMTBFHours(ft.Ranks(), meanW)
		fmt.Printf("  %-16s %5.1f W/node  %5.1f°C  $%7.2f/yr (cluster)  node-failure every %6.0f h\n",
			label, meanW, tempC, annual, mtbf)
	}
	fmt.Println("\ncontinuous-operation projection (8-node cluster):")
	describe(crescendo.Points[0].Label, crescendo.Points[0])
	best := norm.Best(repro.DeltaHPC)
	describe(crescendo.Points[best].Label, crescendo.Points[best])

	p0, pb := crescendo.Points[0], crescendo.Points[best]
	saved := cost.AnnualCostUSD(p0.Energy, p0.Delay) - cost.AnnualCostUSD(pb.Energy, pb.Delay)
	w0 := p0.Energy / p0.Delay / nodes
	wb := pb.Energy / pb.Delay / nodes
	lifeGain := repro.LifeFactor(rel.NodeTempC(wb), rel.NodeTempC(w0))
	fmt.Printf("\nrunning at %s instead of 1.4GHz saves $%.2f/year and extends component life %.2fx\n",
		pb.Label, saved, lifeGain)
}
