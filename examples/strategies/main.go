// Strategies: compare the paper's three distributed DVS strategies —
// the cpuspeed daemon, synchronized static control, and PowerPack-
// directed dynamic control — on NAS FT class C, reproducing the
// structure of the paper's Figure 4 and printing where each strategy's
// energy goes (the PowerPack region profile for fft()).
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	cfg := repro.DefaultConfig()
	cfg.Settle = 30 * repro.Second
	cfg.Reps = 1
	cfg.UseTrueEnergy = true
	runner, err := repro.NewRunner(cfg)
	if err != nil {
		log.Fatal(err)
	}

	ft := repro.NewFT('C', 8)
	ft.IterOverride = 2

	// Baseline: everything pinned at 1.4 GHz.
	base, err := runner.Run(ft, repro.Static{}, 0)
	if err != nil {
		log.Fatal(err)
	}
	baseE := float64(base.EnergyTrue)
	baseD := base.Delay.Seconds()
	fmt.Printf("baseline static 1.4GHz: %.0f J, %.1f s\n\n", baseE, baseD)

	row := func(name string, e float64, d float64) {
		fmt.Printf("%-22s E=%.3f  D=%.3f  (%.0f J, %.1f s)\n", name, e/baseE, d/baseD, e, d)
	}

	// 1) cpuspeed: per-node daemons steering from /proc/stat. MPICH
	// busy-polls, so the daemon sees a busy CPU and conserves little.
	cp, err := runner.RunCpuspeed(ft, repro.NewCpuspeed())
	if err != nil {
		log.Fatal(err)
	}
	row("cpuspeed", cp.Energy, cp.Delay)

	// 2) static control at each reduced frequency.
	static, err := runner.Sweep(ft, repro.Static{})
	if err != nil {
		log.Fatal(err)
	}
	for _, p := range static.Points[1:] {
		row(fmt.Sprintf("static %v", p.Freq), p.Energy, p.Delay)
	}

	// 3) dynamic control: drop to the minimum operating point inside
	// the fft() region only (where the slack lives), back to the base
	// point elsewhere.
	dyn := repro.NewDynamic(repro.RegionFFT)
	dynRes, err := runner.RunOnce(ft, dyn, 0, 1)
	if err != nil {
		log.Fatal(err)
	}
	row("dynamic fft()@600MHz", float64(dynRes.EnergyTrue), dynRes.Delay.Seconds())

	// PowerPack's region profile shows why dynamic control works: the
	// fft() function holds nearly all the time and energy.
	fmt.Println("\nPowerPack region profile (dynamic run, cluster-wide):")
	for _, rp := range dynRes.Profiles {
		fmt.Printf("  region %-6s: entered %3d times, %8.1f s, %10.0f J\n",
			rp.Region, rp.Count, rp.Time.Seconds(), float64(rp.Energy))
	}
	fmt.Printf("  whole run    : %31.1f s, %10.0f J (all nodes)\n",
		dynRes.Delay.Seconds()*8, float64(dynRes.EnergyTrue))
}
