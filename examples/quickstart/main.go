// Quickstart: sweep the DVS operating points for NAS FT class B on 8
// simulated nodes, print the energy-delay crescendo, and pick the
// "best" operating point under the paper's three weight presets.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// The default configuration is the paper's apparatus (16-node-class
	// Pentium M laptops, 100 Mb Ethernet, ACPI battery measurement,
	// 3 repetitions). For a quick demo we shrink the protocol.
	cfg := repro.DefaultConfig()
	cfg.Settle = 30 * repro.Second
	cfg.Reps = 1
	cfg.UseTrueEnergy = true

	runner, err := repro.NewRunner(cfg)
	if err != nil {
		log.Fatal(err)
	}

	ft := repro.NewFT('B', 8)
	ft.IterOverride = 4 // a few iterations are enough for stable ratios

	crescendo, err := runner.Sweep(ft, repro.Static{})
	if err != nil {
		log.Fatal(err)
	}

	norm := crescendo.Normalized(0)
	fmt.Println("NAS FT class B on 8 nodes — static DVS crescendo:")
	fmt.Printf("%-10s %12s %10s %8s %8s\n", "point", "energy(J)", "delay(s)", "E/E0", "D/D0")
	for i, p := range crescendo.Points {
		fmt.Printf("%-10s %12.1f %10.2f %8.3f %8.3f\n",
			p.Freq, p.Energy, p.Delay, norm.Points[i].Energy, norm.Points[i].Delay)
	}

	ops := crescendo.SelectOperatingPoints()
	fmt.Println("\nBest operating points (weighted ED2P, Eq. 5/6):")
	fmt.Printf("  HPC (d=%.1f):        %v\n", repro.DeltaHPC, ops.HPC.Freq)
	fmt.Printf("  energy (d=%.0f):      %v\n", repro.DeltaEnergy, ops.Energy.Freq)
	fmt.Printf("  performance (d=%.0f): %v\n", repro.DeltaPerformance, ops.Performance.Freq)

	low := norm.Points[len(norm.Points)-1]
	fmt.Printf("\nAt 600 MHz the cluster saves %.1f%% energy for %.1f%% extra time-to-solution.\n",
		(1-low.Energy)*100, (low.Delay-1)*100)
}
