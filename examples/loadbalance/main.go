// Loadbalance: run the paper's 12K×12K parallel matrix transpose on a
// 5×3 process grid and show the per-node energy imbalance that makes it
// a DVS target — the root node assembling the matrix stays busy while
// the other fourteen wait out its receive link, and the corner rank
// keeps most of its block local in the redistribution step.
package main

import (
	"fmt"
	"log"
	"strings"

	"repro"
)

func main() {
	cfg := repro.DefaultConfig()
	cfg.Settle = 30 * repro.Second
	cfg.Reps = 1
	cfg.UseTrueEnergy = true
	runner, err := repro.NewRunner(cfg)
	if err != nil {
		log.Fatal(err)
	}

	tr := repro.NewTranspose(1)

	res, err := runner.RunOnce(tr, repro.Static{}, 0, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("transpose on %d nodes at 1.4GHz: %.1f s, %.0f J total\n\n",
		len(res.Nodes), res.Delay.Seconds(), float64(res.EnergyTrue))

	fmt.Println("per-node energy and busy fraction (node 0 is the gather root):")
	var maxE float64
	for _, nr := range res.Nodes {
		if float64(nr.Energy) > maxE {
			maxE = float64(nr.Energy)
		}
	}
	for i, nr := range res.Nodes {
		busyFrac := float64(nr.Busy) / float64(nr.Busy+nr.Idle)
		bar := strings.Repeat("#", int(float64(nr.Energy)/maxE*40))
		fmt.Printf("  node %2d  %8.0f J  busy %5.1f%%  %s\n",
			i, float64(nr.Energy), busyFrac*100, bar)
	}

	// The imbalance is the opportunity: drop the waiting nodes to the
	// minimum operating point during the redistribution and gather.
	dyn := repro.NewDynamic(repro.RegionStep2, repro.RegionStep3)
	dynRes, err := runner.RunOnce(tr, dyn, 0, 1)
	if err != nil {
		log.Fatal(err)
	}
	saved := 1 - float64(dynRes.EnergyTrue)/float64(res.EnergyTrue)
	slower := dynRes.Delay.Seconds()/res.Delay.Seconds() - 1
	fmt.Printf("\ndynamic control (steps 2-3 at 600MHz): %.1f%% energy saved, %.2f%% slower\n",
		saved*100, slower*100)

	// Per the paper, static 800 MHz is the transpose's HPC sweet spot.
	static800, err := runner.RunOnce(tr, repro.Static{}, 3, 1)
	if err != nil {
		log.Fatal(err)
	}
	saved800 := 1 - float64(static800.EnergyTrue)/float64(res.EnergyTrue)
	slower800 := static800.Delay.Seconds()/res.Delay.Seconds() - 1
	fmt.Printf("static 800MHz:                         %.1f%% energy saved, %.2f%% slower\n",
		saved800*100, slower800*100)
}
