// Command powersim runs ad-hoc power-performance experiments on the
// simulated cluster: pick a workload, a DVS strategy, and an operating
// point, and get energy, delay, per-node and per-component breakdowns.
//
//	powersim -workload ft.B -strategy static -mhz 800
//	powersim -workload transpose -strategy dynamic
//	powersim -workload swim -strategy cpuspeed -reps 3
//	powersim -list
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"repro"
	"repro/internal/cluster"
	"repro/internal/dvs"
	"repro/internal/power"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// replayTrace reads a binary trace archive and prints its per-node
// power statistics — no simulation involved. When csvOut is non-empty
// the archive is also re-encoded to CSV, byte-identical to what a live
// run with -trace would have produced.
func replayTrace(w io.Writer, path, csvOut string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	rd, err := trace.NewReader(f)
	if err == nil {
		st := trace.NewStats()
		sinks := []trace.Sink{st}
		if csvOut != "" {
			sinks = append(sinks, trace.NewFileCSV(csvOut))
		}
		if err = rd.Replay(sinks...); err == nil {
			meta := rd.Meta()
			title := fmt.Sprintf("Power trace %s: %d nodes, %d ticks @ %.3fs",
				path, len(meta.NodeIDs), st.Ticks(), meta.Interval.Seconds())
			err = report.TraceSummary(w, title, st)
			if err == nil && csvOut != "" {
				fmt.Fprintf(w, "CSV re-encoding written to %s\n", csvOut)
			}
		}
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// catalog builds the named workloads at a given scale.
func catalog(scale int) map[string]func() workloads.Workload {
	s := func(base int) int {
		n := base * scale
		if n < 1 {
			n = 1
		}
		return n
	}
	mk := map[string]func() workloads.Workload{
		"swim":     func() workloads.Workload { return workloads.NewSwim(s(100)) },
		"mgrid":    func() workloads.Workload { return workloads.NewMgrid(s(100)) },
		"membench": func() workloads.Workload { return workloads.NewMemBench(s(100)) },
		"cachebench": func() workloads.Workload {
			return workloads.NewCacheBench(s(100000))
		},
		"regbench": func() workloads.Workload { return workloads.NewRegBench(s(5000)) },
		"comm256k": func() workloads.Workload { return workloads.NewCommBench256K(s(500)) },
		"comm4k":   func() workloads.Workload { return workloads.NewCommBench4K(s(5000)) },
		"transpose": func() workloads.Workload {
			return workloads.NewTranspose(s(1))
		},
		"summa": func() workloads.Workload {
			return workloads.NewSumma(int64(4096*s(1)), 2)
		},
	}
	for _, class := range []byte{'A', 'B', 'C'} {
		class := class
		mk["ft."+string(class)] = func() workloads.Workload {
			ft := workloads.NewFT(class, 8)
			ft.IterOverride = s(2)
			return ft
		}
		mk["cg."+string(class)] = func() workloads.Workload {
			cg := workloads.NewCG(class, 8)
			cg.IterOverride = s(5)
			return cg
		}
		mk["is."+string(class)] = func() workloads.Workload {
			is := workloads.NewIS(class, 8)
			is.IterOverride = s(3)
			return is
		}
		mk["mg."+string(class)] = func() workloads.Workload {
			mg := workloads.NewMG(class, 8)
			mg.IterOverride = s(3)
			return mg
		}
		mk["lu."+string(class)] = func() workloads.Workload {
			lu := workloads.NewLU(class, 8)
			lu.IterOverride = s(10)
			return lu
		}
		mk["ep."+string(class)] = func() workloads.Workload {
			ep := workloads.NewEP(class, 8)
			if class != 'A' {
				ep.PairsOverride = 1 << 28 // keep demo runtimes sane
			}
			return ep
		}
	}
	return mk
}

func main() {
	workload := flag.String("workload", "ft.B", "workload name (see -list)")
	strategy := flag.String("strategy", "static", "static | dynamic | cpuspeed | adaptive | slack")
	mhz := flag.Int("mhz", 1400, "base operating point in MHz")
	reps := flag.Int("reps", 1, "repetitions (outliers rejected)")
	scale := flag.Int("scale", 1, "workload size multiplier")
	exact := flag.Bool("exact", true, "report exact energy (false = ACPI battery protocol)")
	jobs := flag.Int("j", 0, "max concurrent repetitions (0 = one worker per CPU, 1 = sequential)")
	shards := flag.Int("shards", 1, "event-core shards per simulation (parallelism inside one run; results are identical at any value)")
	traceCSV := flag.String("trace", "", "stream a per-node power trace CSV to this file (first repetition)")
	traceBin := flag.String("trace-out", "", "stream a compact binary power trace to this file (first repetition)")
	traceReplay := flag.String("trace-replay", "", "replay a binary trace archive: print per-node stats (no simulation); combine with -trace to re-encode it as CSV")
	list := flag.Bool("list", false, "list workloads and exit")
	flag.Parse()

	if *traceReplay != "" {
		if err := replayTrace(os.Stdout, *traceReplay, *traceCSV); err != nil {
			fmt.Fprintf(os.Stderr, "powersim: %v\n", err)
			os.Exit(1)
		}
		return
	}

	names := catalog(*scale)
	if *list {
		var keys []string
		for k := range names {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			w := names[k]()
			fmt.Printf("  %-12s %2d ranks\n", k, w.Ranks())
		}
		return
	}

	mkW, ok := names[*workload]
	if !ok {
		fmt.Fprintf(os.Stderr, "powersim: unknown workload %q (try -list)\n", *workload)
		os.Exit(2)
	}
	w := mkW()

	var strat dvs.Strategy
	switch *strategy {
	case "static":
		strat = dvs.Static{}
	case "dynamic":
		// Act on every region the workload marks.
		strat = dvs.NewDynamic()
	case "cpuspeed":
		strat = dvs.NewCpuspeed()
	case "adaptive":
		strat = dvs.NewAdaptive()
	case "slack":
		strat = dvs.NewSlack()
	default:
		fmt.Fprintf(os.Stderr, "powersim: unknown strategy %q\n", *strategy)
		os.Exit(2)
	}

	cfg := cluster.DefaultConfig()
	cfg.Reps = *reps
	cfg.Settle = 30 * sim.Second
	cfg.UseTrueEnergy = *exact
	cfg.Parallelism = *jobs
	cfg.Shards = *shards
	if *traceCSV != "" || *traceBin != "" {
		cfg.TraceInterval = 250 * sim.Millisecond
		// Only the first repetition (seed == cfg.Seed) streams to the
		// named files; later repetitions still collect stats.
		firstSeed := cfg.Seed
		csvPath, binPath := *traceCSV, *traceBin
		cfg.TraceSinks = func(info cluster.RunInfo) []trace.Sink {
			if info.Seed != firstSeed {
				return nil
			}
			var sinks []trace.Sink
			if csvPath != "" {
				sinks = append(sinks, trace.NewFileCSV(csvPath))
			}
			if binPath != "" {
				sinks = append(sinks, trace.NewFileWriter(binPath))
			}
			return sinks
		}
	}
	runner, err := cluster.NewRunner(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "powersim:", err)
		os.Exit(1)
	}

	table := cfg.Machine.Table
	baseIdx := table.IndexOf(table.ClosestTo(repro.Hz(*mhz) * repro.MHz).Freq)

	agg, err := runner.Run(w, strat, baseIdx)
	if err != nil {
		fmt.Fprintf(os.Stderr, "powersim: %v\n", err)
		os.Exit(1)
	}
	res := agg.Runs[0]

	fmt.Printf("workload %s, strategy %s, base point %s, %d ranks\n",
		res.Workload, res.Strategy, res.Label, len(res.Nodes))
	fmt.Printf("time-to-solution: %.2f s\n", res.Delay.Seconds())
	fmt.Printf("energy: exact %.1f J, ACPI %.1f J, Baytech %.1f J\n",
		float64(res.EnergyTrue), float64(res.EnergyACPI), float64(res.EnergyBaytech))
	fmt.Printf("mean power per node: %.1f W\n",
		float64(res.EnergyTrue)/res.Delay.Seconds()/float64(len(res.Nodes)))
	if len(agg.Runs) > 1 {
		fmt.Printf("over %d reps (%d kept after outlier rejection): mean exact %.1f J, ACPI %.1f J, %.2f s\n",
			len(agg.Runs), agg.Kept, float64(agg.EnergyTrue), float64(agg.EnergyACPI), agg.Delay.Seconds())
	}
	fmt.Println()

	if len(agg.Runs) > 1 {
		fmt.Println("per-node breakdown (first repetition):")
	} else {
		fmt.Println("per-node breakdown:")
	}
	fmt.Printf("  %-5s %10s %8s %8s %6s   %s\n", "node", "energy(J)", "busy%", "idle%", "DVS#", "components (J)")
	for i, nr := range res.Nodes {
		busy := float64(nr.Busy) / float64(nr.Busy+nr.Idle) * 100
		comp := ""
		for _, c := range power.Components() {
			comp += fmt.Sprintf("%s=%.0f ", c, float64(nr.Component[c]))
		}
		fmt.Printf("  %-5d %10.1f %7.1f%% %7.1f%% %6d   %s\n",
			i, float64(nr.Energy), busy, 100-busy, nr.Transitions, comp)
	}

	if res.Trace != nil {
		fmt.Println()
		if err := report.TraceSummary(os.Stdout, "Power trace statistics (first repetition)", res.Trace); err != nil {
			fmt.Fprintf(os.Stderr, "powersim: %v\n", err)
			os.Exit(1)
		}
		if *traceCSV != "" {
			fmt.Printf("power trace CSV (%d ticks) written to %s\n", res.Trace.Ticks(), *traceCSV)
		}
		if *traceBin != "" {
			fmt.Printf("binary power trace (%d ticks) written to %s\n", res.Trace.Ticks(), *traceBin)
		}
	}

	if len(res.Profiles) > 0 {
		fmt.Println("\nPowerPack region profiles (cluster-wide):")
		for _, rp := range res.Profiles {
			fmt.Printf("  %-8s entered %4d times, %10.2f s, %12.1f J\n",
				rp.Region, rp.Count, rp.Time.Seconds(), float64(rp.Energy))
		}
	}
}
