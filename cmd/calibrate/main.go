// Command calibrate prints raw energy-delay crescendos for each
// workload under each DVS strategy, against the paper's reported
// values. It is the tool used to tune the model constants in
// internal/machine/params.go; EXPERIMENTS.md records its final output.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dvs"
	"repro/internal/sim"
	"repro/internal/workloads"
)

func main() {
	quick := flag.Bool("quick", false, "small workloads, one repetition")
	only := flag.String("only", "", "run only the named workload")
	flag.Parse()

	cfg := cluster.DefaultConfig()
	if *quick {
		cfg.Reps = 1
		cfg.Settle = 30 * sim.Second
		cfg.UseTrueEnergy = true
	}
	r, err := cluster.NewRunner(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "calibrate:", err)
		os.Exit(1)
	}

	type job struct {
		w       workloads.Workload
		strats  []dvs.Strategy
		dynOnly bool
	}
	scale := 1
	if *quick {
		scale = 0
	}
	_ = scale

	micro := func(passesQuick, passesFull int) int {
		if *quick {
			return passesQuick
		}
		return passesFull
	}

	ftB := workloads.NewFT('B', 8)
	ftB.IterOverride = micro(2, 6)
	ftC := workloads.NewFT('C', 8)
	ftC.IterOverride = micro(1, 4)

	jobs := []job{
		{w: workloads.NewSwim(micro(20, 200))},
		{w: workloads.NewMgrid(micro(20, 200))},
		{w: workloads.NewMemBench(micro(20, 400))},
		{w: workloads.NewCacheBench(micro(100000, 400000))},
		{w: workloads.NewRegBench(micro(2000, 20000))},
		{w: workloads.NewCommBench256K(micro(200, 2000))},
		{w: workloads.NewCommBench4K(micro(2000, 20000))},
		{w: ftB, strats: []dvs.Strategy{dvs.Static{}, dvs.NewDynamic(workloads.RegionFFT)}},
		{w: ftC, strats: []dvs.Strategy{dvs.Static{}, dvs.NewDynamic(workloads.RegionFFT)}},
		{w: workloads.NewTranspose(micro(1, 2)), strats: []dvs.Strategy{
			dvs.Static{}, dvs.NewDynamic(workloads.RegionStep2, workloads.RegionStep3)}},
	}

	for _, j := range jobs {
		if *only != "" && j.w.Name() != *only {
			continue
		}
		strats := j.strats
		if strats == nil {
			strats = []dvs.Strategy{dvs.Static{}}
		}
		for _, s := range strats {
			c, err := r.Sweep(j.w, s)
			if err != nil {
				fmt.Fprintf(os.Stderr, "%s/%s: %v\n", j.w.Name(), s.Name(), err)
				continue
			}
			n := c.Normalized(0)
			// Report simulated time only: calibration output must be
			// byte-identical across hosts (EXPERIMENTS.md diffs it), so
			// no wall-clock reads here.
			fmt.Printf("== %s / %s  (sim delay@top %.1fs, E@top %.0fJ)\n",
				j.w.Name(), s.Name(), c.Points[0].Delay, c.Points[0].Energy)
			for i, p := range n.Points {
				fmt.Printf("   %8s  E=%.3f  D=%.3f\n", c.Points[i].Freq, p.Energy, p.Delay)
			}
			best := n.Best(core.DeltaHPC)
			fmt.Printf("   HPC best: %v (%.1f%% better than top)\n",
				c.Points[best].Freq, 100*n.Improvement(best, 0, core.DeltaHPC))
		}
		// cpuspeed point for the parallel codes.
		if j.w.Ranks() > 1 {
			pt, err := r.RunCpuspeed(j.w, dvs.NewCpuspeed())
			if err != nil {
				fmt.Fprintf(os.Stderr, "%s/cpuspeed: %v\n", j.w.Name(), err)
				continue
			}
			// Normalize against static top.
			c, err := r.Run(j.w, dvs.Static{}, 0)
			if err != nil {
				fmt.Fprintf(os.Stderr, "%s/static-top: %v\n", j.w.Name(), err)
				continue
			}
			base := float64(c.EnergyACPI)
			if cfg.UseTrueEnergy {
				base = float64(c.EnergyTrue)
			}
			fmt.Printf("   cpuspeed  E=%.3f  D=%.3f\n",
				pt.Energy/base, pt.Delay/c.Delay.Seconds())
		}
	}
}
