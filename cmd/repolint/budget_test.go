package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/lint/analysis"
	"repro/internal/lint/repolint"
)

// writeBudget lays down a LINT_BUDGET.json-shaped file.
func writeBudget(t *testing.T, dir, body string) string {
	t.Helper()
	path := filepath.Join(dir, "budget.json")
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCheckBudget(t *testing.T) {
	analyzers := []*analysis.Analyzer{
		{Name: "fast"},
		{Name: "slow"},
	}
	elapsed := map[string]time.Duration{
		"fast": 5 * time.Millisecond,
		"slow": 300 * time.Millisecond,
	}
	dir := t.TempDir()

	t.Run("clean", func(t *testing.T) {
		path := writeBudget(t, dir, `{"ceiling_ms": {"fast": 100, "slow": 1000}}`)
		var stderr bytes.Buffer
		if code := checkBudget(path, analyzers, elapsed, &stderr); code != 0 {
			t.Fatalf("exit %d, want 0; stderr:\n%s", code, stderr.String())
		}
	})

	t.Run("exceeded ceiling", func(t *testing.T) {
		path := writeBudget(t, dir, `{"ceiling_ms": {"fast": 100, "slow": 100}}`)
		var stderr bytes.Buffer
		if code := checkBudget(path, analyzers, elapsed, &stderr); code != 2 {
			t.Fatalf("exit %d, want 2; stderr:\n%s", code, stderr.String())
		}
		if !strings.Contains(stderr.String(), "slow took") {
			t.Errorf("no over-ceiling report for slow:\n%s", stderr.String())
		}
	})

	t.Run("missing ceiling", func(t *testing.T) {
		path := writeBudget(t, dir, `{"ceiling_ms": {"fast": 100}}`)
		var stderr bytes.Buffer
		if code := checkBudget(path, analyzers, elapsed, &stderr); code != 2 {
			t.Fatalf("exit %d, want 2; stderr:\n%s", code, stderr.String())
		}
		if !strings.Contains(stderr.String(), "slow has no ceiling") {
			t.Errorf("no missing-ceiling report:\n%s", stderr.String())
		}
	})

	t.Run("stale ceiling", func(t *testing.T) {
		path := writeBudget(t, dir, `{"ceiling_ms": {"fast": 100, "slow": 1000, "retired": 50}}`)
		var stderr bytes.Buffer
		if code := checkBudget(path, analyzers, elapsed, &stderr); code != 2 {
			t.Fatalf("exit %d, want 2; stderr:\n%s", code, stderr.String())
		}
		if !strings.Contains(stderr.String(), "retired") {
			t.Errorf("no stale-ceiling report:\n%s", stderr.String())
		}
	})

	t.Run("missing file", func(t *testing.T) {
		var stderr bytes.Buffer
		if code := checkBudget(filepath.Join(dir, "nope.json"), analyzers, elapsed, &stderr); code != 1 {
			t.Fatalf("exit %d, want 1", code)
		}
	})

	t.Run("malformed file", func(t *testing.T) {
		path := writeBudget(t, dir, "not json")
		var stderr bytes.Buffer
		if code := checkBudget(path, analyzers, elapsed, &stderr); code != 1 {
			t.Fatalf("exit %d, want 1", code)
		}
	})
}

// TestCommittedBudgetCoversRegistry holds the committed
// LINT_BUDGET.json to the registry the same way the README inventory
// test does: a ceiling per registered analyzer, no stale entries —
// without timing anything (elapsed zero is always under a positive
// ceiling).
func TestCommittedBudgetCoversRegistry(t *testing.T) {
	path := filepath.Join("..", "..", "LINT_BUDGET.json")
	var stderr bytes.Buffer
	if code := checkBudget(path, repolint.All(), map[string]time.Duration{}, &stderr); code != 0 {
		t.Fatalf("committed LINT_BUDGET.json out of sync with repolint.All(): exit %d\n%s", code, stderr.String())
	}
}

// TestListAnalyzers checks -list prints one line per registered
// analyzer, name first.
func TestListAnalyzers(t *testing.T) {
	var buf bytes.Buffer
	listAnalyzers(&buf)
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	all := repolint.All()
	if len(lines) != len(all) {
		t.Fatalf("-list printed %d lines for %d analyzers:\n%s", len(lines), len(all), buf.String())
	}
	for i, a := range all {
		if !strings.HasPrefix(lines[i], a.Name) {
			t.Errorf("-list line %d = %q, want it to lead with %q", i, lines[i], a.Name)
		}
		if !strings.Contains(lines[i], a.Doc) {
			t.Errorf("-list line %d missing the doc for %s", i, a.Name)
		}
	}
}
