// benchdiff.go implements the `repolint benchdiff` subcommand: the
// benchmark-regression gate over the NDJSON archive `make bench`
// writes. See internal/lint/benchdiff for the comparison semantics
// (allocs/op and B/op exact, ns/op within a percentage band, minimum
// over -count repetitions) and the Makefile's benchdiff/bench-baseline
// targets for how CI drives it.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/lint/benchdiff"
)

// benchdiffMain runs the subcommand and returns the process exit code:
// 0 clean (or baseline updated), 1 operational error, 2 regression.
func benchdiffMain(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	fs.SetOutput(stderr)
	baselinePath := fs.String("baseline", "BENCH_baseline.json", "committed baseline file to gate against (or rewrite with -update)")
	band := fs.Float64("band", 25, "tolerance band in percent for ns/op and nonzero memory stats; a zero allocs/op or B/op baseline is always exact")
	update := fs.Bool("update", false, "rewrite the baseline from the stream (normalized: sorted, timestamps stripped) instead of comparing")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: repolint benchdiff [-baseline file] [-band pct] [-update] [stream.json]\n\n"+
			"Gates the `go test -json` benchmark stream (default BENCH_sim.json) against\n"+
			"the committed baseline. Exit 0 clean, 1 error, 2 regression.\n\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 1
	}
	streamPath := "BENCH_sim.json"
	switch fs.NArg() {
	case 0:
	case 1:
		streamPath = fs.Arg(0)
	default:
		fs.Usage()
		return 1
	}

	sf, err := os.Open(streamPath)
	if err != nil {
		fmt.Fprintln(stderr, "benchdiff:", err)
		return 1
	}
	defer sf.Close()
	current, err := benchdiff.ParseStream(sf)
	if err != nil {
		fmt.Fprintf(stderr, "benchdiff: %s: %v\n", streamPath, err)
		return 1
	}
	if len(current) == 0 {
		fmt.Fprintf(stderr, "benchdiff: %s: no benchmark results in stream\n", streamPath)
		return 1
	}

	if *update {
		f, err := os.Create(*baselinePath)
		if err != nil {
			fmt.Fprintln(stderr, "benchdiff:", err)
			return 1
		}
		if err := benchdiff.WriteBaseline(f, current); err != nil {
			f.Close()
			fmt.Fprintln(stderr, "benchdiff:", err)
			return 1
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(stderr, "benchdiff:", err)
			return 1
		}
		fmt.Fprintf(stdout, "benchdiff: wrote %s (%d benchmarks, timestamps stripped)\n", *baselinePath, len(current))
		return 0
	}

	bf, err := os.Open(*baselinePath)
	if err != nil {
		fmt.Fprintf(stderr, "benchdiff: %v (create it with `make bench-baseline`)\n", err)
		return 1
	}
	defer bf.Close()
	baseline, err := benchdiff.ReadBaseline(bf)
	if err != nil {
		fmt.Fprintf(stderr, "benchdiff: %s: %v\n", *baselinePath, err)
		return 1
	}

	deltas, failures := benchdiff.Compare(baseline, current, *band)
	for _, d := range deltas {
		fmt.Fprintf(stdout, "%-10s %s  %s\n", d.Verdict, d.Key, d.Detail)
	}
	if failures > 0 {
		fmt.Fprintf(stderr, "benchdiff: %d regression(s) against %s (band %.0f%%); "+
			"if intentional, refresh with `make bench-baseline` and commit the diff\n",
			failures, *baselinePath, *band)
		return 2
	}
	return 0
}
