package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"repro/internal/lint/analysis"
)

// lintBudget is the LINT_BUDGET.json schema: one wall-time ceiling per
// analyzer, in milliseconds, for a full standalone pass over the whole
// module. The ceilings are deliberately generous — an order of
// magnitude over the measured cost on a warm developer machine — so
// the gate only trips on real complexity regressions (an analyzer
// going quadratic on the module), not on runner noise.
type lintBudget struct {
	CeilingMs map[string]float64 `json:"ceiling_ms"`
}

// checkBudget compares per-analyzer elapsed wall time against the
// ceilings in budgetFile. Every analyzer that ran must have a ceiling
// and every ceiling must name an analyzer that ran, so the budget file
// cannot drift from the registry. Returns exit status 2 on any
// exceeded ceiling or inventory mismatch, 1 on operational errors.
func checkBudget(budgetFile string, analyzers []*analysis.Analyzer, elapsed map[string]time.Duration, stderr io.Writer) int {
	raw, err := os.ReadFile(budgetFile)
	if err != nil {
		fmt.Fprintln(stderr, "repolint:", err)
		return 1
	}
	var budget lintBudget
	if err := json.Unmarshal(raw, &budget); err != nil {
		fmt.Fprintf(stderr, "repolint: parsing %s: %v\n", budgetFile, err)
		return 1
	}

	ran := make(map[string]bool, len(analyzers))
	bad := 0
	for _, a := range analyzers {
		ran[a.Name] = true
		ceiling, ok := budget.CeilingMs[a.Name]
		if !ok {
			fmt.Fprintf(stderr, "repolint: budget: analyzer %s has no ceiling in %s\n", a.Name, budgetFile)
			bad++
			continue
		}
		if ms := float64(elapsed[a.Name].Microseconds()) / 1e3; ms > ceiling {
			fmt.Fprintf(stderr, "repolint: budget: analyzer %s took %.1fms, over its %.0fms ceiling in %s\n",
				a.Name, ms, ceiling, budgetFile)
			bad++
		}
	}
	stale := make([]string, 0, len(budget.CeilingMs))
	for name := range budget.CeilingMs {
		if !ran[name] {
			stale = append(stale, name)
		}
	}
	sort.Strings(stale)
	for _, name := range stale {
		fmt.Fprintf(stderr, "repolint: budget: %s gives a ceiling for %s, which is not a registered analyzer in this run\n", budgetFile, name)
		bad++
	}
	if bad > 0 {
		return 2
	}
	return 0
}
