package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/lint/benchdiff"
	"repro/internal/lint/repolint"
)

// --- analyzer selection ---

func TestSelectAnalyzers(t *testing.T) {
	all, err := selectAnalyzers("")
	if err != nil || len(all) != len(repolint.All()) {
		t.Fatalf("selectAnalyzers(\"\") = %d analyzers, err %v; want the full suite (%d)",
			len(all), err, len(repolint.All()))
	}
	subset, err := selectAnalyzers("determinism, profgate")
	if err != nil {
		t.Fatal(err)
	}
	if len(subset) != 2 || subset[0].Name != "determinism" || subset[1].Name != "profgate" {
		t.Errorf("subset = %v, want [determinism profgate]", subset)
	}
	if _, err := selectAnalyzers("nosuch"); err == nil {
		t.Error("selectAnalyzers(\"nosuch\") succeeded, want unknown-analyzer error")
	}
}

// --- standalone driver ---

// TestRunStandaloneCleanPackage lints the module (the tree is
// lint-clean, so the run must be too) through both output modes. The
// standalone loader resolves intra-module imports from the `go list`
// set, so the pattern must cover the whole module, rooted at go.mod.
func TestRunStandaloneCleanPackage(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module; not short")
	}
	root := filepath.Join("..", "..")
	analyzers, err := selectAnalyzers("")
	if err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	if code := runStandalone([]string{"./..."}, analyzers, false, true, "", root, &stdout, &stderr); code != 0 {
		t.Fatalf("plain mode exit %d, stderr:\n%s", code, stderr.String())
	}
	if stdout.Len() != 0 {
		t.Errorf("plain clean run wrote to stdout: %q", stdout.String())
	}
	// -timing was set: the pretty printer must report every analyzer's
	// wall time on stderr.
	for _, a := range analyzers {
		if !strings.Contains(stderr.String(), a.Name) {
			t.Errorf("-timing table missing analyzer %s:\n%s", a.Name, stderr.String())
		}
	}

	stdout.Reset()
	stderr.Reset()
	if code := runStandalone([]string{"./..."}, analyzers, true, false, "", root, &stdout, &stderr); code != 0 {
		t.Fatalf("-json mode exit %d, stderr:\n%s", code, stderr.String())
	}
	// Whatever -json emits (suppressed findings included) must be one
	// well-formed object per line with the stable field set — now
	// followed by one timing record per analyzer.
	timings := make(map[string]bool)
	dec := json.NewDecoder(bytes.NewReader(stdout.Bytes()))
	for dec.More() {
		var raw map[string]any
		if err := dec.Decode(&raw); err != nil {
			t.Fatalf("-json output is not NDJSON: %v\n%s", err, stdout.String())
		}
		name, _ := raw["analyzer"].(string)
		if name == "" {
			t.Errorf("-json object missing analyzer field: %+v", raw)
		}
		if _, isTiming := raw["elapsed_ms"]; isTiming {
			timings[name] = true
			continue
		}
		if pos, _ := raw["pos"].(string); pos == "" {
			t.Errorf("-json diagnostic missing pos: %+v", raw)
		}
		if suppressed, _ := raw["suppressed"].(bool); !suppressed {
			t.Errorf("clean tree emitted an unsuppressed diagnostic: %+v", raw)
		}
	}
	for _, a := range analyzers {
		if !timings[a.Name] {
			t.Errorf("-json stream has no timing record for analyzer %s", a.Name)
		}
	}
}

// TestRunStandaloneDiagnostics seeds a diagnostic (the detcmd fixture
// under the lint testdata module is a real module the loader can list)
// and checks the exit code and -json wire format carry it.
func TestRunStandaloneDiagnostics(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks packages; not short")
	}
	dir := filepath.Join("..", "..", "internal", "lint", "testdata", "src", "repro")
	if _, err := os.Stat(filepath.Join(dir, "go.mod")); err != nil {
		// The fixture tree is GOPATH-style (no go.mod): the standalone
		// loader needs a module, so synthesize one in a copy.
		dir = t.TempDir()
		writeFixtureModule(t, dir)
	}
	analyzers, err := selectAnalyzers("determinism")
	if err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	code := runStandalone([]string{"./..."}, analyzers, true, false, "", dir, &stdout, &stderr)
	if code != 2 {
		t.Fatalf("exit %d, want 2 (diagnostics); stderr:\n%s", code, stderr.String())
	}
	var found bool
	dec := json.NewDecoder(bytes.NewReader(stdout.Bytes()))
	for dec.More() {
		var d jsonDiagnostic
		if err := dec.Decode(&d); err != nil {
			t.Fatalf("-json output: %v", err)
		}
		// Timing records share the stream but carry no position.
		if d.Analyzer == "determinism" && d.Pos != "" && !d.Suppressed {
			found = true
		}
	}
	if !found {
		t.Errorf("no unsuppressed determinism diagnostic in -json output:\n%s", stdout.String())
	}
}

// writeFixtureModule lays down a minimal module whose one package
// violates the determinism gate.
func writeFixtureModule(t *testing.T, dir string) {
	t.Helper()
	files := map[string]string{
		"go.mod": "module repro\n\ngo 1.22\n",
		"internal/sim/clock.go": `package sim

import "time"

// Now leaks wall-clock time into the simulator.
func Now() time.Time { return time.Now() }
`,
	}
	for name, content := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// --- benchdiff subcommand ---

// benchStream writes a synthetic `go test -json` stream with the given
// benchmark metric lines.
func benchStream(t *testing.T, dir, name string, lines ...string) string {
	t.Helper()
	var b strings.Builder
	for _, l := range lines {
		ev := map[string]string{
			"Time":    "2026-08-05T01:39:57.0Z",
			"Action":  "output",
			"Package": "repro/internal/sim",
			"Output":  l + "\n",
		}
		data, err := json.Marshal(ev)
		if err != nil {
			t.Fatal(err)
		}
		b.Write(data)
		b.WriteByte('\n')
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const cleanBench = "BenchmarkSchedule-8\t35257432\t33.73 ns/op\t0 B/op\t0 allocs/op"

func TestBenchdiffUpdateAndCleanCompare(t *testing.T) {
	dir := t.TempDir()
	stream := benchStream(t, dir, "stream.json", cleanBench)
	baseline := filepath.Join(dir, "baseline.json")

	var stdout, stderr bytes.Buffer
	if code := benchdiffMain([]string{"-update", "-baseline", baseline, stream}, &stdout, &stderr); code != 0 {
		t.Fatalf("-update exit %d, stderr:\n%s", code, stderr.String())
	}
	first, err := os.ReadFile(baseline)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(first), "Time") {
		t.Errorf("baseline carries timestamps:\n%s", first)
	}

	// A second update from the same stream must be byte-identical: the
	// whole point of normalization is a stable diff.
	if code := benchdiffMain([]string{"-update", "-baseline", baseline, stream}, &stdout, &stderr); code != 0 {
		t.Fatalf("second -update exit %d", code)
	}
	second, err := os.ReadFile(baseline)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, second) {
		t.Errorf("baseline not stable across updates:\n%s\nvs\n%s", first, second)
	}

	stdout.Reset()
	stderr.Reset()
	if code := benchdiffMain([]string{"-baseline", baseline, stream}, &stdout, &stderr); code != 0 {
		t.Fatalf("clean compare exit %d, stderr:\n%s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "BenchmarkSchedule") {
		t.Errorf("compare output missing the benchmark:\n%s", stdout.String())
	}
}

// TestBenchdiffSeededRegressions is the acceptance case: an allocs/op
// 0->1 bump and an out-of-band ns/op bump must each exit nonzero.
func TestBenchdiffSeededRegressions(t *testing.T) {
	dir := t.TempDir()
	baseline := filepath.Join(dir, "baseline.json")
	clean := benchStream(t, dir, "clean.json", cleanBench)
	var stdout, stderr bytes.Buffer
	if code := benchdiffMain([]string{"-update", "-baseline", baseline, clean}, &stdout, &stderr); code != 0 {
		t.Fatalf("baseline update failed: %s", stderr.String())
	}

	cases := []struct {
		name string
		line string
	}{
		{"allocs 0 to 1", "BenchmarkSchedule-8\t35257432\t33.73 ns/op\t8 B/op\t1 allocs/op"},
		{"ns outside band", "BenchmarkSchedule-8\t35257432\t55.00 ns/op\t0 B/op\t0 allocs/op"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			stream := benchStream(t, dir, "bad.json", tc.line)
			var stdout, stderr bytes.Buffer
			code := benchdiffMain([]string{"-baseline", baseline, "-band", "25", stream}, &stdout, &stderr)
			if code != 2 {
				t.Fatalf("exit %d, want 2; stdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
			}
			if !strings.Contains(stdout.String(), string(benchdiff.Regression)) {
				t.Errorf("no REGRESSION verdict in output:\n%s", stdout.String())
			}
		})
	}
}

func TestBenchdiffOperationalErrors(t *testing.T) {
	dir := t.TempDir()
	var stdout, stderr bytes.Buffer

	// Missing stream file.
	if code := benchdiffMain([]string{filepath.Join(dir, "nope.json")}, &stdout, &stderr); code != 1 {
		t.Errorf("missing stream: exit %d, want 1", code)
	}

	// Stream exists, baseline missing: must point at make bench-baseline.
	stream := benchStream(t, dir, "stream.json", cleanBench)
	stderr.Reset()
	if code := benchdiffMain([]string{"-baseline", filepath.Join(dir, "nope-baseline.json"), stream}, &stdout, &stderr); code != 1 {
		t.Errorf("missing baseline: exit %d, want 1", code)
	}
	if !strings.Contains(stderr.String(), "bench-baseline") {
		t.Errorf("missing-baseline error does not mention the refresh target: %s", stderr.String())
	}

	// Malformed stream.
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte("this is not ndjson\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if code := benchdiffMain([]string{bad}, &stdout, &stderr); code != 1 {
		t.Errorf("malformed stream: exit %d, want 1", code)
	}

	// Bad flag.
	if code := benchdiffMain([]string{"-nosuchflag"}, &stdout, &stderr); code != 1 {
		t.Errorf("bad flag: exit %d, want 1", code)
	}

	// Too many positional args.
	if code := benchdiffMain([]string{stream, stream}, &stdout, &stderr); code != 1 {
		t.Errorf("extra args: exit %d, want 1", code)
	}
}
