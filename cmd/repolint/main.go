// Command repolint runs the repository's analyzer suite (determinism,
// floateq, unitsafety, panicfree, sharedstate, concsafety, erraudit,
// detflow, hotalloc, profgate, shardown, typestate, rangecheck,
// lookahead — see internal/lint) in two modes:
//
// Standalone, against package patterns, loading and type-checking the
// module itself:
//
//	go run ./cmd/repolint ./...
//	repolint -list         # print every registered analyzer with its one-line doc
//	repolint -only determinism,panicfree ./internal/...
//	repolint -json ./...   # one JSON object per line, suppressions and timing included
//	repolint -timing ./... # per-analyzer wall-time table on stderr
//
// And as a vet tool, speaking the go vet driver protocol (the -V=full
// handshake, the -flags query, and the JSON .cfg package description
// with pre-built export data), which lets the go tool own package
// loading, caching, and parallelism:
//
//	go build -o bin/repolint ./cmd/repolint
//	go vet -vettool=bin/repolint ./...
//
// It also hosts the benchmark-regression gate as a subcommand (see
// internal/lint/benchdiff):
//
//	repolint benchdiff BENCH_sim.json             # compare against BENCH_baseline.json
//	repolint benchdiff -band 10 BENCH_sim.json    # tighter ns/op band
//	repolint benchdiff -update BENCH_sim.json     # refresh the baseline
//
// Exit status: 0 clean, 1 operational error, 2 diagnostics/regressions
// reported.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"repro/internal/lint/analysis"
	"repro/internal/lint/loader"
	"repro/internal/lint/repolint"
)

func main() {
	// Subcommand dispatch happens before flag.Parse so benchdiff can
	// own its flag set.
	if len(os.Args) > 1 && os.Args[1] == "benchdiff" {
		os.Exit(benchdiffMain(os.Args[2:], os.Stdout, os.Stderr))
	}

	versionFlag := flag.String("V", "", "print version and exit (go vet handshake)")
	flagsFlag := flag.Bool("flags", false, "print analyzer flags as JSON and exit (go vet handshake)")
	list := flag.Bool("list", false, "print every registered analyzer with its one-line doc and exit")
	only := flag.String("only", "", "comma-separated subset of analyzers to run")
	jsonOut := flag.Bool("json", false,
		"standalone mode: print one JSON object per diagnostic (including suppressed ones) to stdout")
	timing := flag.Bool("timing", false,
		"standalone mode: print a per-analyzer wall-time table to stderr (-json always carries timing records)")
	budget := flag.String("budget", "",
		"standalone mode: JSON file of per-analyzer wall-time ceilings in ms (see LINT_BUDGET.json); any exceeded ceiling fails the run")
	flag.Usage = usage
	flag.Parse()

	switch {
	case *versionFlag != "":
		printVersion(*versionFlag)
		return
	case *flagsFlag:
		fmt.Println("[]") // no pass-through flags beyond the handshake
		return
	case *list:
		listAnalyzers(os.Stdout)
		return
	}

	analyzers, err := selectAnalyzers(*only)
	if err != nil {
		fmt.Fprintln(os.Stderr, "repolint:", err)
		os.Exit(1)
	}

	args := flag.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(runVetUnit(args[0], analyzers))
	}
	os.Exit(runStandalone(args, analyzers, *jsonOut, *timing, *budget, ".", os.Stdout, os.Stderr))
}

// listAnalyzers prints the registered suite, one analyzer per line
// with its one-line doc, in reporting order — the -list inventory that
// the README sync test and operators both read.
func listAnalyzers(w io.Writer) {
	for _, a := range repolint.All() {
		fmt.Fprintf(w, "%-12s %s\n", a.Name, a.Doc)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, "usage: repolint [-only a,b] [package pattern ...]\n"+
		"       repolint benchdiff [-baseline file] [-band pct] [-update] [stream.json]\n"+
		"       go vet -vettool=$(command -v repolint) ./...\n\nanalyzers:\n")
	for _, a := range repolint.All() {
		fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, a.Doc)
	}
	flag.PrintDefaults()
}

// printVersion answers go vet's tool-identity handshake. The go tool
// folds the line into its build cache key, so it must change when the
// binary does: we hash the executable itself, as x/tools' unitchecker
// does.
func printVersion(mode string) {
	if mode != "full" {
		fmt.Fprintf(os.Stderr, "repolint: unsupported -V mode %q\n", mode)
		os.Exit(1)
	}
	progname := filepath.Base(os.Args[0])
	self, err := os.Open(os.Args[0])
	if err != nil {
		fmt.Fprintln(os.Stderr, "repolint:", err)
		os.Exit(1)
	}
	defer self.Close()
	h := sha256.New()
	if _, err := io.Copy(h, self); err != nil {
		fmt.Fprintln(os.Stderr, "repolint:", err)
		os.Exit(1)
	}
	fmt.Printf("%s version devel comments-go-here buildID=%02x\n", progname, string(h.Sum(nil)))
}

func selectAnalyzers(only string) ([]*analysis.Analyzer, error) {
	if only == "" {
		return repolint.All(), nil
	}
	var out []*analysis.Analyzer
	for _, name := range strings.Split(only, ",") {
		a := repolint.ByName(strings.TrimSpace(name))
		if a == nil {
			return nil, fmt.Errorf("unknown analyzer %q", name)
		}
		out = append(out, a)
	}
	return out, nil
}

// jsonDiagnostic is the -json wire format: one object per line, stable
// field set, so CI can diff lint state between commits. Suppressed
// findings appear with Suppressed=true (and do not affect the exit
// status) — the diff then shows suppressions being added or retired.
type jsonDiagnostic struct {
	Analyzer   string `json:"analyzer"`
	Pos        string `json:"pos"` // file:line:col
	Message    string `json:"message"`
	Suppressed bool   `json:"suppressed"`
}

// jsonTiming is the -json per-analyzer wall-time record, one per
// analyzer after the diagnostics, so CI can watch lint cost alongside
// lint state between commits.
type jsonTiming struct {
	Analyzer  string  `json:"analyzer"`
	ElapsedMs float64 `json:"elapsed_ms"`
}

// runStandalone loads packages with the module-aware loader (rooted at
// dir) and runs every analyzer over every package. budgetFile, if
// non-empty, names the per-analyzer wall-time ceiling table checked
// after the run (the `make lint` budget gate).
func runStandalone(patterns []string, analyzers []*analysis.Analyzer, jsonOut, timing bool, budgetFile, dir string, stdout, stderr io.Writer) int {
	fset := token.NewFileSet()
	pkgs, err := loader.Load(fset, dir, patterns...)
	if err != nil {
		fmt.Fprintln(stderr, "repolint:", err)
		return 1
	}
	enc := json.NewEncoder(stdout)
	found := 0
	elapsed := make(map[string]time.Duration, len(analyzers))
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := analysis.NewPass(a, fset, pkg.Files, pkg.Types, pkg.Info)
			start := time.Now()
			err := a.Run(pass)
			elapsed[a.Name] += time.Since(start)
			if err != nil {
				fmt.Fprintf(stderr, "repolint: %s: %s: %v\n", a.Name, pkg.ImportPath, err)
				return 1
			}
			for _, d := range pass.Diagnostics() {
				if jsonOut {
					if err := enc.Encode(jsonDiagnostic{
						Analyzer: d.Analyzer,
						Pos:      fset.Position(d.Pos).String(),
						Message:  d.Message,
					}); err != nil {
						fmt.Fprintln(stderr, "repolint:", err)
						return 1
					}
				} else {
					fmt.Fprintf(stderr, "%s: %s: %s\n", fset.Position(d.Pos), d.Analyzer, d.Message)
				}
				found++
			}
			if jsonOut {
				for _, s := range pass.Suppressed() {
					if err := enc.Encode(jsonDiagnostic{
						Analyzer:   s.Analyzer,
						Pos:        fset.Position(s.Pos).String(),
						Message:    s.Message,
						Suppressed: true,
					}); err != nil {
						fmt.Fprintln(stderr, "repolint:", err)
						return 1
					}
				}
			}
		}
	}
	if jsonOut {
		// Timing records ride in the same stream after the diagnostics;
		// wall times are measurements, not simulation outputs, so the
		// determinism discipline does not apply to them.
		for _, a := range analyzers {
			if err := enc.Encode(jsonTiming{ //lint:allow detflow (per-analyzer wall time is a measurement; the lint wire format is not a deterministic simulation artifact)
				Analyzer:  a.Name,
				ElapsedMs: float64(elapsed[a.Name].Microseconds()) / 1e3,
			}); err != nil {
				//lint:allow detflow (the encode error string inherits the wall-time taint; it is operator diagnostics, not simulation output)
				fmt.Fprintln(stderr, "repolint:", err)
				return 1
			}
		}
	}
	if timing && !jsonOut {
		order := make([]*analysis.Analyzer, len(analyzers))
		copy(order, analyzers)
		sort.SliceStable(order, func(i, j int) bool {
			return elapsed[order[i].Name] > elapsed[order[j].Name]
		})
		fmt.Fprintf(stderr, "repolint: per-analyzer wall time over %d package(s):\n", len(pkgs))
		for _, a := range order {
			//lint:allow detflow (the -timing table prints measured wall time by design; it is operator diagnostics, not simulation output)
			fmt.Fprintf(stderr, "  %-12s %8.1fms\n", a.Name, float64(elapsed[a.Name].Microseconds())/1e3)
		}
	}
	if found > 0 {
		if !jsonOut {
			fmt.Fprintf(stderr, "repolint: %d diagnostic(s)\n", found)
		}
		return 2
	}
	if budgetFile != "" {
		return checkBudget(budgetFile, analyzers, elapsed, stderr)
	}
	return 0
}

// vetConfig is the JSON package description the go vet driver hands to
// a -vettool for each package unit (see x/tools unitchecker for the
// reference decoder of the same schema).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// runVetUnit analyzes the single package unit described by cfgFile,
// type-checking against the export data the go tool already built.
func runVetUnit(cfgFile string, analyzers []*analysis.Analyzer) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "repolint:", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "repolint: parsing %s: %v\n", cfgFile, err)
		return 1
	}

	// The driver always expects the facts output file; the suite uses
	// no cross-package facts, so it is empty.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "repolint:", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0 // dependency visited only for facts, of which we have none
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			fmt.Fprintln(os.Stderr, "repolint:", err)
			return 1
		}
		files = append(files, f)
	}

	imp := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	// Test variants arrive as "path [path.test]"; analyzers scope by
	// the real import path.
	importPath := cfg.ImportPath
	if i := strings.IndexByte(importPath, ' '); i >= 0 {
		importPath = importPath[:i]
	}
	info := loader.NewInfo()
	conf := types.Config{Importer: imp, GoVersion: cfg.GoVersion}
	tpkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "repolint: type-checking %s: %v\n", cfg.ImportPath, err)
		return 1
	}

	found := 0
	for _, a := range analyzers {
		pass := analysis.NewPass(a, fset, files, tpkg, info)
		if err := a.Run(pass); err != nil {
			fmt.Fprintf(os.Stderr, "repolint: %s: %s: %v\n", a.Name, cfg.ImportPath, err)
			return 1
		}
		for _, d := range pass.Diagnostics() {
			fmt.Fprintf(os.Stderr, "%s: %s: %s\n", fset.Position(d.Pos), d.Analyzer, d.Message)
			found++
		}
	}
	if found > 0 {
		return 2
	}
	return 0
}
