// Command campaign runs a declarative experiment matrix: a JSON spec
// (workloads × strategies × operating points) executed under the
// paper's measurement protocol, with results as a table or JSON.
//
//	campaign -config study.json
//	campaign -config study.json -json > results.json
//	campaign -example            # print a starter spec
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/campaign"
)

const exampleSpec = `{
  "name": "strategy-study",
  "reps": 3,
  "settle": "5m",
  "workloads": [
    {"kind": "ft", "class": "B", "procs": 8, "iters": 8},
    {"kind": "cg", "class": "A", "procs": 8, "iters": 15},
    {"kind": "transpose", "iters": 1}
  ],
  "strategies": [
    {"kind": "static"},
    {"kind": "dynamic"},
    {"kind": "cpuspeed"},
    {"kind": "adaptive"}
  ],
  "points_mhz": [1400, 1000, 600]
}`

func main() {
	config := flag.String("config", "", "JSON spec file (- for stdin)")
	asJSON := flag.Bool("json", false, "emit results as JSON instead of a table")
	quiet := flag.Bool("quiet", false, "suppress per-cell progress on stderr")
	example := flag.Bool("example", false, "print an example spec and exit")
	jobs := flag.Int("j", 0, "max concurrent cells; overrides the spec's parallelism (0 = keep spec value, which defaults to one worker per CPU)")
	shards := flag.Int("shards", 0, "event-core shards per simulation; overrides the spec's shards (0 = keep spec value, 1 = single shard)")
	flag.Parse()

	if *jobs < 0 {
		fmt.Fprintln(os.Stderr, "campaign: -j must be non-negative")
		os.Exit(2)
	}
	if *shards < 0 {
		fmt.Fprintln(os.Stderr, "campaign: -shards must be non-negative")
		os.Exit(2)
	}

	if *example {
		fmt.Println(exampleSpec)
		return
	}
	if *config == "" {
		fmt.Fprintln(os.Stderr, "campaign: -config is required (see -example)")
		os.Exit(2)
	}

	in := os.Stdin
	if *config != "-" {
		f, err := os.Open(*config)
		if err != nil {
			fmt.Fprintf(os.Stderr, "campaign: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		in = f
	}
	spec, err := campaign.Parse(in)
	if err != nil {
		fmt.Fprintf(os.Stderr, "campaign: %v\n", err)
		os.Exit(1)
	}
	if *jobs > 0 {
		spec.Parallelism = *jobs
	}
	if *shards > 0 {
		spec.Shards = *shards
	}

	progress := func(line string) {
		if !*quiet {
			fmt.Fprintln(os.Stderr, line)
		}
	}
	results, err := campaign.Run(spec, progress)
	if err != nil {
		fmt.Fprintf(os.Stderr, "campaign: %v\n", err)
		os.Exit(1)
	}

	if *asJSON {
		err = campaign.WriteJSON(os.Stdout, results)
	} else {
		err = campaign.WriteTable(os.Stdout, results)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "campaign: %v\n", err)
		os.Exit(1)
	}
}
