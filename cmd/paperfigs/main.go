// Command paperfigs regenerates every table and figure of the paper's
// evaluation from the simulated cluster:
//
//	Fig 1  — energy-delay crescendos for mgrid and swim (sequential)
//	Fig 2  — weighted-ED2P tradeoff curves
//	Table 1 — best operating points for mgrid and swim
//	Table 2 — Pentium M operating points
//	Fig 3  — NAS FT class B on 8 nodes: cpuspeed vs static crescendo
//	Table 3 — best operating points for FT class B
//	Fig 4  — FT class C on 8 procs: cpuspeed vs static vs dynamic
//	Fig 5  — 12K×12K transpose on 15 procs: same three strategies
//	Fig 6  — memory-bound microbenchmark crescendo
//	Fig 7  — CPU-bound (L2) and register microbenchmark crescendos
//	Fig 8  — communication microbenchmarks (256 KB RT, 4 KB/64 B)
//
// Energy is measured through the simulated ACPI battery protocol by
// default (the paper's instrument); -exact reports the integrator's
// ground truth instead. -quick shrinks workloads for a fast smoke run.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dvs"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// traceFileName builds a filesystem-safe archive name for one run.
func traceFileName(info cluster.RunInfo) string {
	clean := func(s string) string {
		return strings.Map(func(r rune) rune {
			switch {
			case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '.', r == '-':
				return r
			default:
				return '_'
			}
		}, s)
	}
	return fmt.Sprintf("%s-%s-%s-%d.trc", clean(info.Workload), clean(info.Strategy), clean(info.Label), info.Seed)
}

// replayTrace summarizes one archived binary trace: per-node power
// statistics plus a downsampled draw chart for the first traced node.
func replayTrace(w io.Writer, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	rd, rerr := trace.NewReader(f)
	err = rerr
	if err == nil {
		meta := rd.Meta()
		node := meta.NodeIDs[0]
		st := trace.NewStats()
		ds := trace.NewDownsampler(node, 64)
		if err = rd.Replay(st, ds); err == nil {
			title := fmt.Sprintf("Power trace %s: %d nodes, %d ticks @ %.3fs",
				filepath.Base(path), len(meta.NodeIDs), st.Ticks(), meta.Interval.Seconds())
			err = report.TraceSummary(w, title, st)
			if err == nil && st.Ticks() > 1 {
				var peak float64
				if p, perr := st.PeakPower(node); perr == nil {
					peak = float64(p)
				}
				if peak > 0 {
					xs, ys := ds.Series()
					for i := range ys {
						ys[i] /= peak
					}
					err = report.CurveChart(w,
						fmt.Sprintf("Node %d total draw over time (fraction of peak, x in seconds)", node),
						xs, []report.Series{{Name: "total W / peak W", Values: ys}}, 12)
				}
			}
		}
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

type app struct {
	runner *cluster.Runner
	out    io.Writer
	quick  bool
	charts bool
}

// crescendo renders the table and, when enabled, the bar chart.
func (a *app) crescendo(title string, c core.Crescendo) error {
	if err := report.Crescendo(a.out, title, c); err != nil {
		return err
	}
	if a.charts {
		return report.CrescendoChart(a.out, title+" (chart)", c, 0)
	}
	return nil
}

func main() {
	quick := flag.Bool("quick", false, "smaller workloads, one repetition, short settle")
	exact := flag.Bool("exact", false, "report exact integrated energy instead of the ACPI estimate")
	only := flag.String("only", "", "comma-separated list of items to produce (e.g. fig3,table1); empty = all")
	reps := flag.Int("reps", 0, "override repetition count")
	charts := flag.Bool("charts", false, "also render ASCII bar charts for the crescendos")
	traceOut := flag.String("trace-out", "", "archive every run's binary power trace into this directory")
	traceReplay := flag.String("trace-replay", "", "summarize one archived binary trace (no simulation), then exit")
	flag.Parse()

	if *traceReplay != "" {
		if err := replayTrace(os.Stdout, *traceReplay); err != nil {
			fmt.Fprintln(os.Stderr, "paperfigs:", err)
			os.Exit(1)
		}
		return
	}

	cfg := cluster.DefaultConfig()
	if *quick {
		cfg.Reps = 1
		cfg.Settle = 30 * sim.Second
		cfg.UseTrueEnergy = true
	}
	if *exact {
		cfg.UseTrueEnergy = true
	}
	if *reps > 0 {
		cfg.Reps = *reps
	}
	if *traceOut != "" {
		if err := os.MkdirAll(*traceOut, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "paperfigs:", err)
			os.Exit(1)
		}
		cfg.TraceInterval = 250 * sim.Millisecond
		dir := *traceOut
		cfg.TraceSinks = func(info cluster.RunInfo) []trace.Sink {
			return []trace.Sink{trace.NewFileWriter(filepath.Join(dir, traceFileName(info)))}
		}
	}
	runner, err := cluster.NewRunner(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "paperfigs:", err)
		os.Exit(1)
	}
	a := &app{runner: runner, out: os.Stdout, quick: *quick, charts: *charts}

	want := map[string]bool{}
	if *only != "" {
		for _, k := range strings.Split(*only, ",") {
			want[strings.TrimSpace(k)] = true
		}
	}
	sel := func(k string) bool { return len(want) == 0 || want[k] }

	type item struct {
		key string
		fn  func() error
	}
	items := []item{
		{"table2", a.table2},
		{"fig2", a.fig2},
		{"fig1", a.fig1AndTable1},
		{"fig3", a.fig3AndTable3},
		{"fig4", a.fig4},
		{"fig5", a.fig5},
		{"fig6", a.fig6},
		{"fig7", a.fig7},
		{"fig8", a.fig8},
	}
	// table1/table3 ride along with fig1/fig3.
	alias := map[string]string{"table1": "fig1", "table3": "fig3"}
	for k, v := range alias {
		if want[k] {
			want[v] = true
		}
	}

	for _, it := range items {
		if !sel(it.key) {
			continue
		}
		if err := it.fn(); err != nil {
			fmt.Fprintf(os.Stderr, "paperfigs: %s: %v\n", it.key, err)
			os.Exit(1)
		}
	}
}

// size picks a workload scale parameter for quick vs full runs.
func (a *app) size(quick, full int) int {
	if a.quick {
		return quick
	}
	return full
}

func (a *app) table2() error {
	return report.OperatingPoints(a.out, a.runner.Config().Machine.Table)
}

func (a *app) fig2() error {
	deltas := []float64{-0.4, -0.2, 0, 0.2, 0.4, 0.6}
	if err := report.TradeoffCurves(a.out, deltas, 2.0, 11); err != nil {
		return err
	}
	if !a.charts {
		return nil
	}
	series := make([]report.Series, 0, len(deltas))
	var xs []float64
	for _, d := range deltas {
		x, ys := core.TradeoffCurve(d, 2.0, 61)
		xs = x
		series = append(series, report.Series{Name: fmt.Sprintf("d=%.1f", d), Values: ys})
	}
	return report.CurveChart(a.out, "Fig 2 (chart). Energy fraction vs delay factor", xs, series, 16)
}

func (a *app) fig1AndTable1() error {
	mgrid, err := a.runner.Sweep(workloads.NewMgrid(a.size(30, 300)), dvs.Static{})
	if err != nil {
		return err
	}
	swim, err := a.runner.Sweep(workloads.NewSwim(a.size(30, 300)), dvs.Static{})
	if err != nil {
		return err
	}
	if err := a.crescendo("Fig 1a. SPEC mgrid energy-delay crescendo (1 node)", mgrid); err != nil {
		return err
	}
	if err := a.crescendo("Fig 1b. SPEC swim energy-delay crescendo (1 node)", swim); err != nil {
		return err
	}
	return report.BestPoints(a.out, "Table 1. Operating points for mgrid and swim (MHz)",
		[]report.CrescendoRow{{Name: "mgrid", Crescendo: mgrid}, {Name: "swim", Crescendo: swim}})
}

func (a *app) fig3AndTable3() error {
	ft := workloads.NewFT('B', 8)
	ft.IterOverride = a.size(2, 20)
	c, err := a.runner.Sweep(ft, dvs.Static{})
	if err != nil {
		return err
	}
	pt, err := a.runner.RunCpuspeed(ft, dvs.NewCpuspeed())
	if err != nil {
		return err
	}
	// Display order: static 1.4 GHz (the normalization reference),
	// the cpuspeed point, then the rest of the static crescendo.
	combined := core.Crescendo{Workload: c.Workload}
	combined.Points = append(combined.Points, c.Points[0])
	combined.Points = append(combined.Points, core.Point{Label: "cpuspeed", Energy: pt.Energy, Delay: pt.Delay})
	combined.Points = append(combined.Points, c.Points[1:]...)
	if err := a.crescendo("Fig 3. NAS FT class B on 8 nodes (normalized to static 1.4GHz)", combined); err != nil {
		return err
	}
	return report.BestPoints(a.out, "Table 3. Best operating points for FT class B on 8 nodes (MHz)",
		[]report.CrescendoRow{{Name: "FT", Crescendo: c}})
}

// strategiesFigure renders a Fig 4/5 style comparison.
func (a *app) strategiesFigure(title string, w workloads.Workload, dyn *dvs.Dynamic) error {
	var pts []report.StrategyPoint
	stat, err := a.runner.Sweep(w, dvs.Static{})
	if err != nil {
		return err
	}
	cp, err := a.runner.RunCpuspeed(w, dvs.NewCpuspeed())
	if err != nil {
		return err
	}
	pts = append(pts, report.StrategyPoint{Strategy: "cpuspeed", Label: "auto", Energy: cp.Energy, Delay: cp.Delay})
	for _, p := range stat.Points {
		pts = append(pts, report.StrategyPoint{Strategy: "stat", Label: p.Freq.String(), Energy: p.Energy, Delay: p.Delay})
	}
	dynC, err := a.runner.Sweep(w, dyn)
	if err != nil {
		return err
	}
	for _, p := range dynC.Points {
		pts = append(pts, report.StrategyPoint{Strategy: "dyn", Label: p.Freq.String(), Energy: p.Energy, Delay: p.Delay})
	}
	return report.Strategies(a.out, title, pts, 1) // normalize to static 1.4GHz
}

func (a *app) fig4() error {
	ft := workloads.NewFT('C', 8)
	ft.IterOverride = a.size(1, 8)
	return a.strategiesFigure(
		"Fig 4. FT class C on 8 processors: cpuspeed vs static vs dynamic (fft() at min speed)",
		ft, dvs.NewDynamic(workloads.RegionFFT))
}

func (a *app) fig5() error {
	tr := workloads.NewTranspose(a.size(1, 2))
	return a.strategiesFigure(
		"Fig 5. 12Kx12K matrix transpose on 15 processors: cpuspeed vs static vs dynamic (steps 2-3 at min speed)",
		tr, dvs.NewDynamic(workloads.RegionStep2, workloads.RegionStep3))
}

func (a *app) fig6() error {
	c, err := a.runner.Sweep(workloads.NewMemBench(a.size(40, 400)), dvs.Static{})
	if err != nil {
		return err
	}
	return a.crescendo("Fig 6. Memory-bound microbenchmark (32MB buffer, 128B stride)", c)
}

func (a *app) fig7() error {
	c, err := a.runner.Sweep(workloads.NewCacheBench(a.size(100000, 1000000)), dvs.Static{})
	if err != nil {
		return err
	}
	if err := a.crescendo("Fig 7. CPU-bound microbenchmark (256KB buffer, 128B stride, L2 resident)", c); err != nil {
		return err
	}
	r, err := a.runner.Sweep(workloads.NewRegBench(a.size(2000, 20000)), dvs.Static{})
	if err != nil {
		return err
	}
	return a.crescendo("Fig 7 (register variant). Register-only compute", r)
}

func (a *app) fig8() error {
	c, err := a.runner.Sweep(workloads.NewCommBench256K(a.size(200, 2000)), dvs.Static{})
	if err != nil {
		return err
	}
	if err := a.crescendo("Fig 8a. 256KB round trip (2 nodes)", c); err != nil {
		return err
	}
	d, err := a.runner.Sweep(workloads.NewCommBench4K(a.size(2000, 20000)), dvs.Static{})
	if err != nil {
		return err
	}
	return a.crescendo("Fig 8b. 4KB message, 64B stride (2 nodes)", d)
}
