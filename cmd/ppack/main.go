// Command ppack is the PowerPack profiling tool: it runs the suite's
// microbenchmarks on one simulated node (or a node pair, for the
// communication benchmarks) at every operating point and prints the
// per-component power profile — the measurements behind the paper's
// Section 4 "power-performance analysis".
//
//	ppack              # all microbenchmarks
//	ppack -bench mem   # one of mem | cache | reg | comm256k | comm4k
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cluster"
	"repro/internal/dvs"
	"repro/internal/power"
	"repro/internal/sim"
	"repro/internal/workloads"
)

func main() {
	benchName := flag.String("bench", "", "run only this microbenchmark (mem|cache|reg|comm256k|comm4k)")
	flag.Parse()

	benches := []struct {
		key string
		w   workloads.Workload
	}{
		{"mem", workloads.NewMemBench(100)},
		{"cache", workloads.NewCacheBench(200000)},
		{"reg", workloads.NewRegBench(5000)},
		{"comm256k", workloads.NewCommBench256K(400)},
		{"comm4k", workloads.NewCommBench4K(4000)},
	}

	cfg := cluster.DefaultConfig()
	cfg.Reps = 1
	cfg.Settle = 30 * sim.Second
	cfg.UseTrueEnergy = true
	runner, err := cluster.NewRunner(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ppack:", err)
		os.Exit(1)
	}
	table := cfg.Machine.Table

	found := false
	for _, b := range benches {
		if *benchName != "" && b.key != *benchName {
			continue
		}
		found = true
		fmt.Printf("== %s (%s, %d rank(s))\n", b.key, b.w.Name(), b.w.Ranks())
		fmt.Printf("   %-8s %9s %9s %8s", "point", "delay(s)", "node(W)", "cpu(W)")
		for _, c := range power.Components()[1:] {
			fmt.Printf(" %7s(W)", c)
		}
		fmt.Println()
		for i := 0; i < table.Len(); i++ {
			res, err := runner.RunOnce(b.w, dvs.Static{}, i, 1)
			if err != nil {
				fmt.Fprintf(os.Stderr, "ppack: %v\n", err)
				os.Exit(1)
			}
			secs := res.Delay.Seconds()
			nodeW := float64(res.EnergyTrue) / secs / float64(len(res.Nodes))
			fmt.Printf("   %-8s %9.2f %9.2f", table.At(i).Freq, secs, nodeW)
			// Average per-component power across nodes.
			for _, c := range power.Components() {
				var e float64
				for _, nr := range res.Nodes {
					e += float64(nr.Component[c])
				}
				fmt.Printf(" %9.2f", e/secs/float64(len(res.Nodes)))
			}
			fmt.Println()
		}
		fmt.Println()
	}
	if !found {
		fmt.Fprintf(os.Stderr, "ppack: unknown benchmark %q\n", *benchName)
		os.Exit(2)
	}
}
