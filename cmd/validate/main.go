// Command validate runs the complete reproduction and checks every
// headline quantity against its paper value with a tolerance band,
// printing a PASS/FAIL/DIVERGENCE table. It is the executable form of
// EXPERIMENTS.md: the same checks the shape tests assert, plus the two
// documented divergences reported as such rather than as failures.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dvs"
	"repro/internal/sim"
	"repro/internal/workloads"
)

type check struct {
	name     string
	paper    string
	measured float64
	lo, hi   float64
	// diverges marks a documented divergence: reported, not failed.
	diverges bool
	note     string
}

type suite struct {
	checks []check
	runner *cluster.Runner
}

func (s *suite) add(name, paper string, measured, lo, hi float64) {
	s.checks = append(s.checks, check{name: name, paper: paper, measured: measured, lo: lo, hi: hi})
}

func (s *suite) addDivergence(name, paper string, measured float64, note string) {
	s.checks = append(s.checks, check{name: name, paper: paper, measured: measured, diverges: true, note: note})
}

func (s *suite) sweep(w workloads.Workload) core.Crescendo {
	c, err := s.runner.Sweep(w, dvs.Static{})
	if err != nil {
		fmt.Fprintf(os.Stderr, "validate: %v\n", err)
		os.Exit(1)
	}
	return c.Normalized(0)
}

func (s *suite) run(w workloads.Workload, strat dvs.Strategy, idx int) *cluster.Aggregate {
	a, err := s.runner.Run(w, strat, idx)
	if err != nil {
		fmt.Fprintf(os.Stderr, "validate: %v\n", err)
		os.Exit(1)
	}
	return a
}

func main() {
	full := flag.Bool("full", false, "full workload sizes (slower)")
	flag.Parse()

	cfg := cluster.DefaultConfig()
	cfg.Reps = 1
	cfg.Settle = 30 * sim.Second
	cfg.UseTrueEnergy = true
	runner, err := cluster.NewRunner(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "validate:", err)
		os.Exit(1)
	}
	s := &suite{runner: runner}
	size := func(quick, fullN int) int {
		if *full {
			return fullN
		}
		return quick
	}

	// Analytic checks.
	s.add("Eq5 worked example: saving to tie 5% slowdown (d=0.2)", "13.1%",
		(1-core.RequiredEnergyFraction(0.2, 1.05))*100, 12, 15)
	s.add("Fig2 d=0.4, x=1.1 required saving", "~32%",
		(1-core.RequiredEnergyFraction(0.4, 1.1))*100, 30, 40)

	// Fig 6: memory microbenchmark.
	mem := s.sweep(workloads.NewMemBench(size(40, 400)))
	s.add("Fig6 memory E(600)", "0.593", mem.Points[4].Energy, 0.55, 0.65)
	s.add("Fig6 memory D(600)", "1.054", mem.Points[4].Delay, 1.03, 1.08)

	// Fig 7: CPU-bound microbenchmarks.
	l2 := s.sweep(workloads.NewCacheBench(size(100000, 1000000)))
	s.add("Fig7 L2 D(600)", "2.34", l2.Points[4].Delay, 2.28, 2.45)
	eBest := l2.Best(core.DeltaEnergy)
	s.add("Fig7 L2 energy-best frequency (MHz)", "800",
		float64(l2.Points[eBest].Freq.MHz()), 700, 1100)
	s.add("Fig7 L2 E(600) − E(best): rises again", "> 0",
		l2.Points[4].Energy-l2.Points[eBest].Energy, 0.001, 0.2)

	// Fig 8: communication microbenchmarks.
	rt := s.sweep(workloads.NewCommBench256K(size(300, 2000)))
	s.add("Fig8a 256KB E(600)", "0.699", rt.Points[4].Energy, 0.63, 0.75)
	s.add("Fig8a 256KB D(600)", "1.06", rt.Points[4].Delay, 1.03, 1.09)
	small := s.sweep(workloads.NewCommBench4K(size(3000, 20000)))
	s.add("Fig8b 4KB E(600)", "0.64", small.Points[4].Energy, 0.62, 0.75)
	s.add("Fig8b 4KB D(600)", "1.04", small.Points[4].Delay, 1.02, 1.09)

	// Fig 1 / Table 1.
	swim := s.sweep(workloads.NewSwim(size(50, 300)))
	mgrid := s.sweep(workloads.NewMgrid(size(50, 300)))
	s.add("Table1 swim HPC best (MHz)", "1000",
		float64(swim.Points[swim.Best(core.DeltaHPC)].Freq.MHz()), 1000, 1000)
	s.add("Table1 mgrid HPC best (MHz)", "1400",
		float64(mgrid.Points[mgrid.Best(core.DeltaHPC)].Freq.MHz()), 1400, 1400)
	s.add("Table1 swim energy best (MHz)", "600",
		float64(swim.Points[swim.Best(core.DeltaEnergy)].Freq.MHz()), 600, 600)

	// Fig 3 / Table 3: FT class B.
	ftB := workloads.NewFT('B', 8)
	ftB.IterOverride = size(2, 20)
	fb := s.sweep(ftB)
	s.add("Fig3 FT.B E(600)", "0.655", fb.Points[4].Energy, 0.62, 0.72)
	s.add("Fig3 FT.B D(600)", "1.068", fb.Points[4].Delay, 1.05, 1.12)
	topB := s.run(ftB, dvs.Static{}, 0)
	cpB, err := s.runner.RunCpuspeed(ftB, dvs.NewCpuspeed())
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	s.add("Fig3 FT.B cpuspeed E (≈ static 1.4GHz)", "0.966",
		cpB.Energy/float64(topB.EnergyTrue), 0.90, 1.03)
	s.addDivergence("Table3 FT.B HPC best (MHz)", "1000",
		float64(fb.Points[fb.Best(core.DeltaHPC)].Freq.MHz()),
		"near-tie: the paper's own E/D values separate 1000 and 600 by <1% of the metric")

	// Fig 4: FT class C strategies.
	ftC := workloads.NewFT('C', 8)
	ftC.IterOverride = size(1, 8)
	topC := s.run(ftC, dvs.Static{}, 0)
	lowC := s.run(ftC, dvs.Static{}, 4)
	dynC := s.run(ftC, dvs.NewDynamic(workloads.RegionFFT), 0)
	cpC, err := s.runner.RunCpuspeed(ftC, dvs.NewCpuspeed())
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	s.add("Fig4 FT.C static600 E", "0.663",
		float64(lowC.EnergyTrue)/float64(topC.EnergyTrue), 0.62, 0.72)
	s.add("Fig4 FT.C dyn@1.4 E", "0.674",
		float64(dynC.EnergyTrue)/float64(topC.EnergyTrue), 0.64, 0.76)
	s.add("Fig4 FT.C dyn@1.4 D", "1.078",
		dynC.Delay.Seconds()/topC.Delay.Seconds(), 1.04, 1.11)
	s.addDivergence("Fig4 FT.C cpuspeed E", "0.876",
		cpC.Energy/float64(topC.EnergyTrue),
		"busy-polling MPI hides the slack from /proc/stat; see EXPERIMENTS.md")

	// Fig 5: transpose.
	tr := workloads.NewTranspose(size(1, 2))
	tc := s.sweep(tr)
	s.add("Fig5 transpose E(800)", "0.838", tc.Points[3].Energy, 0.79, 0.88)
	s.add("Fig5 transpose E(600)", "0.803", tc.Points[4].Energy, 0.74, 0.84)
	s.add("Fig5 transpose D(600)", "1.024", tc.Points[4].Delay, 1.01, 1.06)
	topT := s.run(tr, dvs.Static{}, 0)
	cpT, err := s.runner.RunCpuspeed(tr, dvs.NewCpuspeed())
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	s.addDivergence("Fig5 transpose cpuspeed E", "0.981 (paper flags it anomalous)",
		cpT.Energy/float64(topT.EnergyTrue),
		"our daemon sees the gather's blocked waits; the paper's row is its own flagged anomaly")

	// Report.
	fail := 0
	fmt.Printf("%-55s %-28s %-10s %s\n", "check", "paper", "measured", "verdict")
	fmt.Println(stringsRepeat("-", 110))
	for _, c := range s.checks {
		verdict := "PASS"
		if c.diverges {
			verdict = "DIVERGES (documented)"
		} else if c.measured < c.lo || c.measured > c.hi {
			verdict = "FAIL"
			fail++
		}
		fmt.Printf("%-55s %-28s %-10.4f %s\n", c.name, c.paper, c.measured, verdict)
		if c.note != "" {
			fmt.Printf("%55s   ↳ %s\n", "", c.note)
		}
	}
	fmt.Printf("\n%d checks, %d failed, %d documented divergences\n",
		len(s.checks), fail, countDivergences(s.checks))
	if fail > 0 {
		os.Exit(1)
	}
}

func countDivergences(cs []check) int {
	n := 0
	for _, c := range cs {
		if c.diverges {
			n++
		}
	}
	return n
}

func stringsRepeat(s string, n int) string {
	out := make([]byte, 0, n*len(s))
	for i := 0; i < n; i++ {
		out = append(out, s...)
	}
	return string(out)
}
